(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md's per-experiment index)
   and, additionally, bechamel microbenchmarks of the compiler passes
   themselves.

   All experiments run through the parallel, memoizing evaluation
   engine (lib/engine + Safara_suites.Eval): -j N sets the domain-pool
   size (default: SAFARA_JOBS, else cores-1), the content-addressed
   caches ensure each (workload, profile) compiles and simulates at
   most once per run, and the rendered output is byte-identical at any
   -j. Engine statistics go to stderr so stdout stays comparable.

   Usage: main.exe [fig7|fig9|fig10|fig11|fig12|table1|table2|offsets|
                    ablations|crossarch|unroll|micro|sim|serve|tune|
                    loopopt|json|all]
                   [-j N] [--smoke] [--min-runs N] [--engine NAME]
                   [--arch NAME] [--store DIR] [--par-threshold N]
                   [--par-min-chunk N]
   (default: all). --engine selects the simulator execution engine
   (reference|decoded|threaded, default threaded) for the experiment
   modes; bench sim always measures all three. --arch selects the GPU
   model from the architecture registry (default kepler) for every
   mode except crossarch (inherently multi-arch) and tune (sweeps the
   registry unless --arch restricts it).                              *)

open Safara_suites

(* every experiment title carries the architecture it was measured on
   when it is not the paper's default, so mixed-arch logs stay
   readable *)
let arch_suffix (arch : Safara_gpu.Arch.t) =
  if arch.Safara_gpu.Arch.key = Safara_gpu.Arch.default.Safara_gpu.Arch.key
  then ""
  else Printf.sprintf " [arch %s]" arch.Safara_gpu.Arch.key

let run_fig7 ~eng ~arch () =
  print_string
    (Experiments.render_speedups
       ~title:
         ("Figure 7: SPEC ACCEL speedup with SAFARA alone (vs OpenUH base)"
         ^ arch_suffix arch)
       (Experiments.fig7 ~eng ~arch ()))

let run_fig9 ~eng ~arch () =
  print_string
    (Experiments.render_speedups
       ~title:
         ("Figure 9: SPEC ACCEL speedup, cumulative small / small+dim / small+dim+SAFARA"
         ^ arch_suffix arch)
       (Experiments.fig9 ~eng ~arch ()))

let run_fig10 ~eng ~arch () =
  print_string
    (Experiments.render_speedups
       ~title:
         ("Figure 10: NAS speedup, cumulative small / small+dim / small+dim+SAFARA"
         ^ arch_suffix arch)
       (Experiments.fig10 ~eng ~arch ()))

let run_fig11 ~eng ~arch () =
  print_string
    (Experiments.render_norms
       ~title:
         ("Figure 11: SPEC normalized execution time, OpenUH vs PGI-like (lower is better)"
         ^ arch_suffix arch)
       (Experiments.fig11 ~eng ~arch ()))

let run_fig12 ~eng ~arch () =
  print_string
    (Experiments.render_norms
       ~title:
         ("Figure 12: NAS normalized execution time, OpenUH vs PGI-like (lower is better)"
         ^ arch_suffix arch)
       (Experiments.fig12 ~eng ~arch ()))

let run_table1 ~eng ~arch () =
  print_string
    (Experiments.render_regs
       ~title:
         ("Table I: 355.seismic register usage via small and dim clauses"
         ^ arch_suffix arch)
       (Experiments.table1 ~eng ~arch ()))

let run_table2 ~eng ~arch () =
  print_string
    (Experiments.render_regs
       ~title:
         ("Table II: 356.sp register usage via small and dim clauses"
         ^ arch_suffix arch)
       (Experiments.table2 ~eng ~arch ()))

let run_offsets ~eng ~arch () =
  print_string (Experiments.render_offsets (Experiments.offsets ~eng ~arch ()))

let run_ablations ~eng ~arch () =
  print_string
    (Experiments.render_ablations (Experiments.ablations ~eng ~arch ()))

let run_crossarch ~eng () =
  print_string (Experiments.render_crossarch (Experiments.crossarch ~eng ()))

let run_unroll ~eng ~arch () =
  print_string
    (Experiments.render_unroll (Experiments.unroll_study ~eng ~arch ()))

(* --- JSON helpers (shared by the json and sim modes) ----------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let j_str s = "\"" ^ json_escape s ^ "\""
let j_float f = Printf.sprintf "%.12g" f
let j_int = string_of_int
let j_list items = "[" ^ String.concat "," items ^ "]"
let j_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> j_str k ^ ":" ^ v) fields) ^ "}"
let j_assoc to_v kvs = j_obj (List.map (fun (k, v) -> (k, to_v v)) kvs)

(* --- sim: simulator-throughput microbenchmark ------------------------ *)
(* Measures simulated instructions per second of all three simulator
   engines — the closure-threaded compiler (default), the pre-decoded
   unboxed core, and the boxed reference walker — over the evaluation
   workload mix, for the functional interpreter and the timing model
   separately, plus the block-parallel path at the given -j. Before
   measuring, each workload is run once under every engine pair and at
   every parallelism level and the results (array checksums, dynamic
   counters, timing stats) are required to match exactly — the
   bit-identity gate; any divergence exits 1. Results go to
   BENCH_sim.json. *)

let sim_smoke_ids = [ "303.ostencil"; "355.seismic"; "EP" ]

type sim_meas = {
  sm_ips : float;  (** total instructions / total wall seconds *)
  sm_best : float;
      (** best single-run ips on the process-CPU clock — the speedup
          basis for serial engine ratios. Wall time charges the engine
          for every preemption by unrelated load; CPU time measures
          the work itself, so serial-vs-serial ratios survive a busy
          machine. *)
  sm_best_wall : float;
      (** best single-run wall-clock ips — the basis for parallel
          ratios, where CPU time would double-count the domains *)
  sm_instr : int;
  sm_s : float;
  sm_runs : int;
}

let sim_with_engine = Safara_sim.Decode.with_engine

(* On a machine shared with background load, measuring the engines one
   after another lets a single load spike poison one engine's window —
   and every ratio computed from it. The engines are therefore
   measured in interleaved rounds, one run of each per round, so any
   noise burst degrades all of them alike; each engine's best-observed
   rate then comes from the same weather, and best-of-K stays an
   apples-to-apples speedup basis. *)
let sim_measure_group ~min_time ~min_runs
    (entries : (Safara_sim.Decode.engine * (unit -> int)) array) :
    sim_meas array =
  let n = Array.length entries in
  (* warm-up round: decoder, closure compiler, allocator *)
  Array.iter
    (fun (e, run) -> sim_with_engine e (fun () -> ignore (run ())))
    entries;
  let instr = Array.make n 0 and secs = Array.make n 0. in
  let best_cpu = Array.make n 0. and best_wall = Array.make n 0. in
  let runs = Array.make n 0 in
  let rec round () =
    Array.iteri
      (fun i (e, run) ->
        let c0 = Sys.time () in
        let r0 = Unix.gettimeofday () in
        let k = sim_with_engine e run in
        let r1 = Unix.gettimeofday () in
        let c1 = Sys.time () in
        if r1 > r0 then
          best_wall.(i) <-
            Float.max best_wall.(i) (float_of_int k /. (r1 -. r0));
        if c1 > c0 then
          best_cpu.(i) <- Float.max best_cpu.(i) (float_of_int k /. (c1 -. c0));
        instr.(i) <- instr.(i) + k;
        secs.(i) <- secs.(i) +. (r1 -. r0);
        runs.(i) <- runs.(i) + 1)
      entries;
    let continue = ref false in
    for i = 0 to n - 1 do
      if secs.(i) < min_time || runs.(i) < min_runs then continue := true
    done;
    if !continue then round ()
  in
  round ();
  Array.init n (fun i ->
      let ips = float_of_int instr.(i) /. secs.(i) in
      {
        sm_ips = ips;
        sm_best = Float.max best_cpu.(i) ips;
        sm_best_wall = Float.max best_wall.(i) ips;
        sm_instr = instr.(i);
        sm_s = secs.(i);
        sm_runs = runs.(i);
      })

(* Measurement closures prepare memory once and reuse it across runs:
   input generation is engine-independent work that would otherwise
   dilute every engine ratio toward 1. Counters measure the work each
   run actually did, so re-running over mutated arrays remains an
   honest instructions-per-second. The bit-identity gates below use
   fresh memory every time. *)

let sim_functional_run c (w : Workload.t) =
  let env = Workload.prepare c w in
  let kgrids =
    List.map
      (fun (k, _) ->
        (k, Safara_sim.Launch.grid_of ~env:env.Safara_sim.Interp.scalars k))
      c.Safara_core.Compiler.c_kernels
  in
  fun () ->
    let counters = Safara_sim.Interp.fresh_counters () in
    List.iter
      (fun (k, grid) ->
        Safara_sim.Interp.run_kernel ~counters
          ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k)
      kgrids;
    counters.Safara_sim.Interp.c_instructions

let sim_timing_run c (w : Workload.t) =
  let env = Workload.prepare c w in
  fun () ->
    let pt = Safara_core.Compiler.time c env in
    List.fold_left
      (fun acc kt -> acc + kt.Safara_sim.Launch.kt_instructions)
      0 pt.Safara_sim.Launch.ptk

let sim_check_identical c (w : Workload.t) =
  (* every engine must agree bit-for-bit — functional results (array
     checksums compared as raw float bits, dynamic counters) and
     timing-model output — before throughput means anything *)
  let snapshot e =
    sim_with_engine e (fun () ->
        let env = Workload.prepare c w in
        let counters = Safara_sim.Interp.fresh_counters () in
        List.iter
          (fun (k, _) ->
            let grid =
              Safara_sim.Launch.grid_of ~env:env.Safara_sim.Interp.scalars k
            in
            Safara_sim.Interp.run_kernel ~counters
              ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k)
          c.Safara_core.Compiler.c_kernels;
        let sums =
          List.map
            (fun (a : Safara_ir.Array_info.t) ->
              ( a.Safara_ir.Array_info.name,
                Int64.bits_of_float
                  (Safara_sim.Memory.checksum env.Safara_sim.Interp.mem
                     a.Safara_ir.Array_info.name) ))
            c.Safara_core.Compiler.c_prog.Safara_ir.Program.arrays
        in
        let timing = Safara_core.Compiler.time c (Workload.prepare c w) in
        (sums, counters, timing))
  in
  let base = snapshot Safara_sim.Decode.Reference in
  List.iter
    (fun e ->
      if e <> Safara_sim.Decode.Reference && snapshot e <> base then (
        Printf.eprintf "bench sim: %s engine diverges from reference on %s\n"
          (Safara_sim.Decode.engine_name e)
          w.Workload.id;
        exit 1))
    Safara_sim.Decode.all_engines

(* block-parallel legality, judged once per kernel so repeated
   measurement runs skip the dependence analysis *)
let sim_kernel_verdicts c =
  List.map
    (fun (k, _) ->
      (k, Safara_sim.Blockpar.analyze ~prog:c.Safara_core.Compiler.c_prog k))
    c.Safara_core.Compiler.c_kernels

let sim_functional_run_par c (w : Workload.t) ~pool ~verdicts =
  let env = Workload.prepare c w in
  let kgrids =
    List.map
      (fun (k, verdict) ->
        ( k,
          verdict,
          Safara_sim.Launch.grid_of ~env:env.Safara_sim.Interp.scalars k ))
      verdicts
  in
  fun () ->
    let counters = Safara_sim.Interp.fresh_counters () in
    List.iter
      (fun (k, verdict, grid) ->
        Safara_sim.Interp.run_kernel ~counters ~pool ~verdict
          ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k)
      kgrids;
    counters.Safara_sim.Interp.c_instructions

let sim_check_parallel c (w : Workload.t) ~pool ~verdicts =
  (* the bit-identity gate of the block-parallel path: final memory
     (every program array) and summed counters must equal the
     sequential walk of the same engine exactly, at any -j, for both
     engines that can fan blocks out. The cost model is forced open
     (threshold 0) so the gate actually exercises the parallel path
     even on tiny launches. *)
  let snapshot run =
    let env = Workload.prepare c w in
    let counters = Safara_sim.Interp.fresh_counters () in
    run env counters;
    let sums =
      List.map
        (fun (a : Safara_ir.Array_info.t) ->
          ( a.Safara_ir.Array_info.name,
            Int64.bits_of_float
              (Safara_sim.Memory.checksum env.Safara_sim.Interp.mem
                 a.Safara_ir.Array_info.name) ))
        c.Safara_core.Compiler.c_prog.Safara_ir.Program.arrays
    in
    (sums, counters)
  in
  List.iter
    (fun e ->
      sim_with_engine e (fun () ->
          let seq =
            snapshot (fun env counters ->
                List.iter
                  (fun (k, _) ->
                    let grid =
                      Safara_sim.Launch.grid_of
                        ~env:env.Safara_sim.Interp.scalars k
                    in
                    Safara_sim.Interp.run_kernel ~counters
                      ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k)
                  c.Safara_core.Compiler.c_kernels)
          in
          let par =
            let saved = !Safara_sim.Interp.parallel_threshold in
            Safara_sim.Interp.parallel_threshold := 0;
            Fun.protect
              ~finally:(fun () ->
                Safara_sim.Interp.parallel_threshold := saved)
              (fun () ->
                snapshot (fun env counters ->
                    List.iter
                      (fun (k, verdict) ->
                        let grid =
                          Safara_sim.Launch.grid_of
                            ~env:env.Safara_sim.Interp.scalars k
                        in
                        Safara_sim.Interp.run_kernel ~counters ~pool ~verdict
                          ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k)
                      verdicts))
          in
          if seq <> par then (
            Printf.eprintf
              "bench sim: %s block-parallel interp diverges from serial on %s\n"
              (Safara_sim.Decode.engine_name e)
              w.Workload.id;
            exit 1)))
    [ Safara_sim.Decode.Decoded; Safara_sim.Decode.Threaded ]

(* one instrumented pass per workload recording how each launch
   actually executed — chosen chunk count, or the runtime fallback
   reason (cost model, -j 1, single block) *)
let sim_kernel_modes c (w : Workload.t) ~pool ~verdicts =
  sim_with_engine Safara_sim.Decode.Threaded (fun () ->
      let env = Workload.prepare c w in
      List.map
        (fun (k, verdict) ->
          let grid =
            Safara_sim.Launch.grid_of ~env:env.Safara_sim.Interp.scalars k
          in
          let m =
            Safara_sim.Interp.run_kernel_m ~pool ~verdict
              ~prog:c.Safara_core.Compiler.c_prog ~env ~grid k
          in
          (k.Safara_vir.Kernel.kname, m))
        verdicts)

type sim_row = {
  r_id : string;
  r_fr : sim_meas;  (** interp, reference walker *)
  r_fd : sim_meas;  (** interp, decoded core *)
  r_ft : sim_meas;  (** interp, threaded closures *)
  r_fp : sim_meas;  (** interp, block-parallel (threaded) *)
  r_tr : sim_meas;  (** timing, reference walker *)
  r_td : sim_meas;  (** timing, decoded core *)
  r_tt : sim_meas;  (** timing, threaded closures *)
  r_verdicts : (Safara_vir.Kernel.t * Safara_sim.Blockpar.verdict) list;
  r_modes : (string * Safara_sim.Interp.mode) list;
}

let run_sim ~smoke ~min_runs ~pool ~arch () =
  let workloads =
    if smoke then List.map Registry.find sim_smoke_ids else Registry.all
  in
  let min_time = if smoke then 0.05 else 0.3 in
  let min_runs =
    match min_runs with Some n -> n | None -> if smoke then 1 else 3
  in
  let jobs = Safara_engine.Pool.size pool in
  Printf.printf
    "Simulator throughput: reference walker vs decoded core vs threaded \
     closures\n\
     profile Full, %s; simulated warp-instructions per second; -j %d, \
     min-runs %d\n\n"
    arch.Safara_gpu.Arch.name jobs min_runs;
  Printf.printf "%-16s %11s %11s %11s %6s %11s %6s %11s %11s %11s %6s\n"
    "workload" "interp-ref" "interp-dec" "interp-thr" "thr-x" "interp-par"
    "par-x" "timing-ref" "timing-dec" "timing-thr" "thr-x";
  let rows =
    List.map
      (fun (w : Workload.t) ->
        let c =
          Safara_core.Compiler.compile_src ~arch Safara_core.Compiler.Full
            w.Workload.source
        in
        sim_check_identical c w;
        let verdicts = sim_kernel_verdicts c in
        sim_check_parallel c w ~pool ~verdicts;
        let modes = sim_kernel_modes c w ~pool ~verdicts in
        let fg =
          sim_measure_group ~min_time ~min_runs
            [|
              (Safara_sim.Decode.Reference, sim_functional_run c w);
              (Safara_sim.Decode.Decoded, sim_functional_run c w);
              (Safara_sim.Decode.Threaded, sim_functional_run c w);
              ( Safara_sim.Decode.Threaded,
                sim_functional_run_par c w ~pool ~verdicts );
            |]
        in
        let fr = fg.(0) and fd = fg.(1) and ft = fg.(2) and fp = fg.(3) in
        let tg =
          sim_measure_group ~min_time ~min_runs
            [|
              (Safara_sim.Decode.Reference, sim_timing_run c w);
              (Safara_sim.Decode.Decoded, sim_timing_run c w);
              (Safara_sim.Decode.Threaded, sim_timing_run c w);
            |]
        in
        let tr = tg.(0) and td = tg.(1) and tt = tg.(2) in
        Printf.printf
          "%-16s %11.3e %11.3e %11.3e %5.2fx %11.3e %5.2fx %11.3e %11.3e \
           %11.3e %5.2fx\n\
           %!"
          w.Workload.id fr.sm_ips fd.sm_ips ft.sm_ips
          (ft.sm_best /. fd.sm_best)
          fp.sm_ips
          (fp.sm_best_wall /. fd.sm_best_wall)
          tr.sm_ips td.sm_ips tt.sm_ips
          (tt.sm_best /. td.sm_best);
        List.iter
          (fun (kname, m) ->
            match m with
            | Safara_sim.Interp.Parallel { chunks } ->
                Printf.printf "  %s/%s: threaded, parallel in %d chunks\n%!"
                  w.Workload.id kname chunks
            | Safara_sim.Interp.Sequential None -> ()
            | Safara_sim.Interp.Sequential (Some r) ->
                Printf.printf "  %s/%s: serial fallback — %s\n%!"
                  w.Workload.id kname
                  (Safara_sim.Blockpar.reason_message r))
          modes;
        { r_id = w.Workload.id; r_fr = fr; r_fd = fd; r_ft = ft; r_fp = fp;
          r_tr = tr; r_td = td; r_tt = tt; r_verdicts = verdicts;
          r_modes = modes })
      workloads
  in
  (* The aggregate combines each workload's best-of-K rate,
     instruction-weighted: per-workload time = one run's instructions
     at the best observed rate, summed across workloads. Mean rates
     fold scheduler noise into every engine ratio (this box runs the
     bench alongside background load on few cores); the best run is
     the closest observation of an engine's actual cost, and using it
     consistently for every engine keeps the ratios honest. *)
  let agg_on basis f =
    let i, s =
      List.fold_left
        (fun (i, s) r ->
          let m = f r in
          let per_run =
            float_of_int m.sm_instr /. float_of_int (max 1 m.sm_runs)
          in
          (i +. per_run, s +. (per_run /. basis m)))
        (0., 0.) rows
    in
    i /. s
  in
  let agg = agg_on (fun m -> m.sm_best) in
  let agg_wall = agg_on (fun m -> m.sm_best_wall) in
  let fr = agg (fun r -> r.r_fr)
  and fd = agg (fun r -> r.r_fd)
  and ft = agg (fun r -> r.r_ft) in
  (* parallel ratios compare wall time to wall time *)
  let fdw = agg_wall (fun r -> r.r_fd)
  and ftw = agg_wall (fun r -> r.r_ft)
  and fp = agg_wall (fun r -> r.r_fp) in
  let tr = agg (fun r -> r.r_tr)
  and td = agg (fun r -> r.r_td)
  and tt = agg (fun r -> r.r_tt) in
  Printf.printf
    "\n\
     %-16s %11.3e %11.3e %11.3e %5.2fx %11.3e %5.2fx %11.3e %11.3e %11.3e \
     %5.2fx\n"
    "aggregate" fr fd ft (ft /. fd) fp (fp /. fdw) tr td tt (tt /. td);
  let meas_json (m : sim_meas) =
    j_obj
      [ ("ips", j_float m.sm_ips);
        ("best_ips", j_float m.sm_best);
        ("best_wall_ips", j_float m.sm_best_wall);
        ("instructions", j_int m.sm_instr);
        ("seconds", j_float m.sm_s);
        ("runs", j_int m.sm_runs) ]
  in
  let verdict_json modes (k, v) =
    let kname = k.Safara_vir.Kernel.kname in
    let mode_fields =
      match List.assoc_opt kname modes with
      | Some (Safara_sim.Interp.Parallel { chunks }) ->
          [ ("mode", j_str "parallel"); ("chunks", j_int chunks) ]
      | Some (Safara_sim.Interp.Sequential None) ->
          [ ("mode", j_str "sequential") ]
      | Some (Safara_sim.Interp.Sequential (Some r)) ->
          [ ("mode", j_str "sequential");
            ("mode_reason", j_str (Safara_sim.Blockpar.reason_message r)) ]
      | None -> []
    in
    j_obj
      (("name", j_str kname)
      ::
      (match v with
      | Safara_sim.Blockpar.Block_parallel -> [ ("block_parallel", "true") ]
      | Safara_sim.Blockpar.Serial r ->
          [ ("block_parallel", "false");
            ("fallback_reason", j_str (Safara_sim.Blockpar.reason_message r))
          ])
      @ mode_fields)
  in
  let json =
    j_obj
      [ ("arch", j_str arch.Safara_gpu.Arch.name);
        ("arch_key", j_str arch.Safara_gpu.Arch.key);
        ("profile", j_str "full");
        ("mode", j_str (if smoke then "smoke" else "full"));
        ("jobs", j_int jobs);
        ("min_runs", j_int min_runs);
        ("default_engine",
         j_str (Safara_sim.Decode.engine_name !Safara_sim.Decode.engine));
        ("workloads",
         j_list
           (List.map
              (fun r ->
                j_obj
                  [ ("id", j_str r.r_id);
                    ("engine",
                     j_str
                       (Safara_sim.Decode.engine_name
                          !Safara_sim.Decode.engine));
                    ("interp_reference", meas_json r.r_fr);
                    ("interp_decoded", meas_json r.r_fd);
                    ("interp_threaded", meas_json r.r_ft);
                    ("interp_speedup",
                     j_float (r.r_fd.sm_best /. r.r_fr.sm_best));
                    ("interp_threaded_speedup",
                     j_float (r.r_ft.sm_best /. r.r_fd.sm_best));
                    ("interp_parallel", meas_json r.r_fp);
                    ("parallel_speedup",
                     j_float (r.r_fp.sm_best_wall /. r.r_fd.sm_best_wall));
                    ("parallel_vs_threaded",
                     j_float (r.r_fp.sm_best_wall /. r.r_ft.sm_best_wall));
                    ("kernels",
                     j_list (List.map (verdict_json r.r_modes) r.r_verdicts));
                    ("timing_reference", meas_json r.r_tr);
                    ("timing_decoded", meas_json r.r_td);
                    ("timing_threaded", meas_json r.r_tt);
                    ("timing_speedup",
                     j_float (r.r_td.sm_best /. r.r_tr.sm_best));
                    ("timing_threaded_speedup",
                     j_float (r.r_tt.sm_best /. r.r_td.sm_best)) ])
              rows));
        ("aggregate",
         j_obj
           [ ("interp_reference_ips", j_float fr);
             ("interp_decoded_ips", j_float fd);
             ("interp_threaded_ips", j_float ft);
             ("interp_speedup", j_float (fd /. fr));
             ("interp_threaded_speedup", j_float (ft /. fd));
             ("interp_parallel_ips", j_float fp);
             ("parallel_speedup", j_float (fp /. fdw));
             ("parallel_vs_threaded", j_float (fp /. ftw));
             ("timing_reference_ips", j_float tr);
             ("timing_decoded_ips", j_float td);
             ("timing_threaded_ips", j_float tt);
             ("timing_speedup", j_float (td /. tr));
             ("timing_threaded_speedup", j_float (tt /. td)) ]) ]
  in
  let oc = open_out "BENCH_sim.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_sim.json\n"

(* --- serve: compile-service latency and throughput ------------------- *)
(* Measures what the daemon actually buys: per-request compile latency
   cold (fresh in-process engine, what plain `saraccc compile` pays),
   against a daemon answering from its warm in-memory caches, and
   against a *restarted* daemon answering from the persistent on-disk
   store; plus sustained warm requests/sec at several concurrent client
   counts. The daemon runs in-process on its own thread — same code
   path as `saraccc serve`, minus process spawn — so the comparison
   isolates cache effects from exec overhead. Results go to
   BENCH_serve.json. In --smoke mode the warm-vs-cold speedup is a
   hard gate: below 10x the run exits 1. *)

let serve_smoke_ids = [ "303.ostencil"; "355.seismic"; "EP" ]

let serve_compile_req (w : Workload.t) =
  Safara_serve.Protocol.Compile
    {
      cr_name = w.Workload.id;
      cr_src = w.Workload.source;
      cr_arch = "kepler";
      cr_profile = "full";
      cr_quiet = true;
      cr_maxrreg = None;
      cr_pressure = false;
      cr_time_passes = false;
      cr_json = false;
      cr_dumps = [];
      cr_annotate_live = false;
      cr_disable = [];
    }

let serve_request conn req =
  match Safara_serve.Client.request conn req with
  | Safara_serve.Protocol.Result (o, ms) ->
      if o.Safara_serve.Protocol.code <> 0 then
        failwith "bench serve: request failed";
      ms
  | Safara_serve.Protocol.Error e -> failwith ("bench serve: " ^ e)
  | Safara_serve.Protocol.Data _ -> failwith "bench serve: unexpected data"

let serve_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  ((Unix.gettimeofday () -. t0) *. 1e3, r)

(* the daemon on a bench thread; returns (thread, stop) where stop
   sends the shutdown request and joins *)
let serve_start ~socket ~store ~jobs =
  let m = Mutex.create () in
  let c = Condition.create () in
  let up = ref false in
  let th =
    Thread.create
      (fun () ->
        Safara_serve.Server.serve
          ~on_ready:(fun _ ->
            Mutex.lock m;
            up := true;
            Condition.signal c;
            Mutex.unlock m)
          {
            Safara_serve.Server.s_socket = socket;
            s_store = Some store;
            s_max_store_bytes = Safara_engine.Store.default_max_bytes;
            s_jobs = jobs;
            s_verbose = false;
          })
      ()
  in
  Mutex.lock m;
  while not !up do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let stop () =
    (match Safara_serve.Client.try_connect socket with
    | Some conn ->
        ignore (Safara_serve.Client.request conn Safara_serve.Protocol.Shutdown);
        Safara_serve.Client.close conn
    | None -> ());
    Thread.join th
  in
  stop

let serve_stats socket =
  match Safara_serve.Client.try_connect socket with
  | None -> Safara_serve.Sjson.Null
  | Some conn ->
      let r = Safara_serve.Client.request conn Safara_serve.Protocol.Stats in
      Safara_serve.Client.close conn;
      (match r with Safara_serve.Protocol.Data d -> d | _ -> Safara_serve.Sjson.Null)

let rec serve_rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> serve_rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let run_serve ~smoke ~jobs () =
  let workloads =
    if smoke then List.map Registry.find serve_smoke_ids else Registry.all
  in
  let repeats = if smoke then 2 else 3 in
  let warm_reqs = if smoke then 5 else 10 in
  let client_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
  let per_client = if smoke then 20 else 50 in
  let tmp =
    let f = Filename.temp_file "saraccc-bench-serve" "" in
    Sys.remove f;
    Unix.mkdir f 0o700;
    f
  in
  let store = Filename.concat tmp "store" in
  Printf.printf
    "Compile service: cold in-process vs daemon (warm memory, warm disk)\n\
     profile full, %d workloads; -j %s; per-request ms is best-of-%d\n\n"
    (List.length workloads)
    (match jobs with Some n -> string_of_int n | None -> "auto")
    warm_reqs;
  (* cold in-process: a fresh engine per repeat, like one CLI run *)
  let cold_inproc =
    List.map
      (fun (w : Workload.t) ->
        let best = ref infinity in
        for _ = 1 to repeats do
          let eng = Eval.create ~jobs:1 () in
          let ms, () =
            serve_wall (fun () ->
                ignore
                  (Eval.compile_src eng Safara_core.Compiler.Full
                     w.Workload.source))
          in
          Eval.shutdown eng;
          if ms < !best then best := ms
        done;
        (w, !best))
      workloads
  in
  (* daemon A: fresh store; cold request then warm repeats *)
  let sock_a = Filename.concat tmp "a.sock" in
  let stop_a = serve_start ~socket:sock_a ~store ~jobs in
  let conn =
    match Safara_serve.Client.try_connect sock_a with
    | Some c -> c
    | None -> failwith "bench serve: daemon A not reachable"
  in
  let cold_daemon =
    List.map
      (fun (w : Workload.t) ->
        serve_wall (fun () -> ignore (serve_request conn (serve_compile_req w)))
        |> fst)
      workloads
  in
  let warm_daemon =
    List.map
      (fun (w : Workload.t) ->
        let best = ref infinity in
        for _ = 1 to warm_reqs do
          let ms, () =
            serve_wall (fun () ->
                ignore (serve_request conn (serve_compile_req w)))
          in
          if ms < !best then best := ms
        done;
        !best)
      workloads
  in
  Safara_serve.Client.close conn;
  (* sustained warm throughput at several client counts *)
  let throughput =
    List.map
      (fun nclients ->
        let reqs = Array.of_list (List.map serve_compile_req workloads) in
        let total = nclients * per_client in
        let ms, () =
          serve_wall (fun () ->
              let clients =
                List.init nclients (fun ci ->
                    Thread.create
                      (fun () ->
                        match Safara_serve.Client.try_connect sock_a with
                        | None -> failwith "bench serve: connect failed"
                        | Some conn ->
                            for i = 0 to per_client - 1 do
                              ignore
                                (serve_request conn
                                   reqs.((ci + i) mod Array.length reqs))
                            done;
                            Safara_serve.Client.close conn)
                      ())
              in
              List.iter Thread.join clients)
        in
        let rps = float_of_int total /. (ms /. 1e3) in
        (nclients, total, ms /. 1e3, rps))
      client_counts
  in
  let stats_a = serve_stats sock_a in
  stop_a ();
  (* daemon B: same store, fresh process state — first requests are
     answered from disk *)
  let sock_b = Filename.concat tmp "b.sock" in
  let stop_b = serve_start ~socket:sock_b ~store ~jobs in
  let diskwarm_daemon =
    match Safara_serve.Client.try_connect sock_b with
    | None -> failwith "bench serve: daemon B not reachable"
    | Some conn ->
        let r =
          List.map
            (fun (w : Workload.t) ->
              serve_wall (fun () ->
                  ignore (serve_request conn (serve_compile_req w)))
              |> fst)
            workloads
        in
        Safara_serve.Client.close conn;
        r
  in
  let stats_b = serve_stats sock_b in
  stop_b ();
  Printf.printf "%-16s %12s %12s %12s %12s\n" "workload" "cold-inproc"
    "cold-daemon" "warm-daemon" "disk-warm";
  let sum l = List.fold_left ( +. ) 0. l in
  List.iteri
    (fun i (w, cold) ->
      Printf.printf "%-16s %9.3f ms %9.3f ms %9.3f ms %9.3f ms\n"
        w.Workload.id cold (List.nth cold_daemon i) (List.nth warm_daemon i)
        (List.nth diskwarm_daemon i))
    cold_inproc;
  let cold_total = sum (List.map snd cold_inproc) in
  let warm_total = sum warm_daemon in
  let speedup = cold_total /. warm_total in
  Printf.printf "%-16s %9.3f ms %9.3f ms %9.3f ms %9.3f ms\n" "total"
    cold_total (sum cold_daemon) warm_total (sum diskwarm_daemon);
  Printf.printf "\nwarm daemon vs cold in-process: %.1fx\n\n" speedup;
  List.iter
    (fun (n, total, s, rps) ->
      Printf.printf "%2d client%s %4d requests %8.3f s %10.1f req/s\n" n
        (if n = 1 then " " else "s") total s rps)
    throughput;
  let json =
    j_obj
      [ ("mode", j_str (if smoke then "smoke" else "full"));
        ("jobs",
         match jobs with Some n -> j_int n | None -> j_str "auto");
        ("workloads",
         j_list
           (List.mapi
              (fun i (w, cold) ->
                j_obj
                  [ ("id", j_str w.Workload.id);
                    ("cold_inprocess_ms", j_float cold);
                    ("cold_daemon_ms", j_float (List.nth cold_daemon i));
                    ("warm_daemon_ms", j_float (List.nth warm_daemon i));
                    ("diskwarm_daemon_ms",
                     j_float (List.nth diskwarm_daemon i)) ])
              cold_inproc));
        ("warm_speedup", j_float speedup);
        ("throughput",
         j_list
           (List.map
              (fun (n, total, s, rps) ->
                j_obj
                  [ ("clients", j_int n);
                    ("requests", j_int total);
                    ("seconds", j_float s);
                    ("rps", j_float rps) ])
              throughput));
        ("engine", Safara_serve.Sjson.to_string stats_a);
        ("engine_diskwarm", Safara_serve.Sjson.to_string stats_b) ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_serve.json\n";
  serve_rm_rf tmp;
  if smoke && speedup < 10. then begin
    Printf.eprintf
      "bench serve: warm daemon speedup %.1fx is below the 10x gate\n" speedup;
    exit 1
  end

(* --- bechamel microbenchmarks of the compiler passes ---------------- *)

let micro_tests ~arch () =
  let open Bechamel in
  let latency = Safara_gpu.Latency.for_arch arch in
  let src = (Registry.find "355.seismic").Workload.source in
  let ast = Safara_lang.Parser.parse src in
  let prog = Safara_lang.Frontend.compile src in
  let resolved = Safara_analysis.Schedule.resolve_program prog in
  let region = List.hd resolved.Safara_ir.Program.regions in
  let kernel = Safara_vir.Codegen.compile_region ~arch resolved region in
  [
    Test.make ~name:"front-end: parse seismic"
      (Staged.stage (fun () -> ignore (Safara_lang.Parser.parse src)));
    Test.make ~name:"front-end: typecheck"
      (Staged.stage (fun () -> ignore (Safara_lang.Typecheck.check ast)));
    Test.make ~name:"analysis: dependences (hot1)"
      (Staged.stage (fun () ->
           ignore (Safara_analysis.Dependence.region_deps region.Safara_ir.Region.body)));
    Test.make ~name:"analysis: reuse candidates (hot1)"
      (Staged.stage (fun () ->
           ignore
             (Safara_analysis.Reuse.candidates ~arch ~latency resolved region)));
    Test.make ~name:"codegen: hot1 -> VIR"
      (Staged.stage (fun () ->
           ignore (Safara_vir.Codegen.compile_region ~arch resolved region)));
    Test.make ~name:"ptxas: allocate hot1"
      (Staged.stage (fun () ->
           ignore (Safara_ptxas.Assemble.assemble ~arch kernel)));
    Test.make ~name:"SAFARA: optimize hot1 (full feedback loop)"
      (Staged.stage (fun () ->
           ignore
             (Safara_transform.Safara.optimize_region ~arch ~latency resolved region)));
  ]

let run_micro ~arch () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  print_endline "Compiler-pass microbenchmarks (bechamel, monotonic clock)";
  print_endline "----------------------------------------------------------";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-44s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    (micro_tests ~arch ())

let all ~eng ~arch () =
  Printf.printf
    "SAFARA reproduction evaluation — %s, latency table '%s'\n\
     profiles: base / SAFARA / small / small+dim / full(small+dim+SAFARA) / PGI-like\n\
     deterministic: fixed workload seeds, no simulator randomness\n\n"
    arch.Safara_gpu.Arch.name arch.Safara_gpu.Arch.key;
  run_table1 ~eng ~arch ();
  print_newline ();
  run_table2 ~eng ~arch ();
  print_newline ();
  run_offsets ~eng ~arch ();
  print_newline ();
  run_fig7 ~eng ~arch ();
  print_newline ();
  run_fig9 ~eng ~arch ();
  print_newline ();
  run_fig10 ~eng ~arch ();
  print_newline ();
  run_fig11 ~eng ~arch ();
  print_newline ();
  run_fig12 ~eng ~arch ();
  print_newline ();
  run_ablations ~eng ~arch ();
  print_newline ();
  run_crossarch ~eng ();
  print_newline ();
  run_unroll ~eng ~arch ();
  print_newline ();
  run_micro ~arch ()

(* --- json output mode ------------------------------------------------ *)

let speedup_rows_json rows =
  j_list
    (List.map
       (fun (r : Experiments.speedup_row) ->
         j_obj
           [ ("id", j_str r.Experiments.sr_id);
             ("values", j_assoc j_float r.Experiments.sr_values) ])
       rows)

let norm_rows_json rows =
  j_list
    (List.map
       (fun (r : Experiments.norm_row) ->
         j_obj
           [ ("id", j_str r.Experiments.nr_id);
             ("values", j_assoc j_float r.Experiments.nr_values) ])
       rows)

let reg_rows_json rows =
  j_list
    (List.map
       (fun (r : Experiments.reg_row) ->
         j_obj
           [ ("kernel", j_str r.Experiments.rr_kernel);
             ("base", j_int r.Experiments.rr_base);
             ("small", j_int r.Experiments.rr_small);
             ("dim",
              match r.Experiments.rr_dim with
              | Some d -> j_int d
              | None -> "null");
             ("saved", j_int r.Experiments.rr_saved) ])
       rows)

let engine_json eng =
  let s = Eval.stats eng in
  let store_fields =
    match s.Eval.st_store with
    | None -> []
    | Some st ->
        [ ("store",
           j_obj
             [ ("disk_hits", j_int st.Safara_engine.Store.st_disk_hits);
               ("disk_misses", j_int st.Safara_engine.Store.st_disk_misses);
               ("bytes_read", j_int st.Safara_engine.Store.st_bytes_read);
               ("bytes_written", j_int st.Safara_engine.Store.st_bytes_written);
               ("evictions", j_int st.Safara_engine.Store.st_evictions);
               ("corrupt", j_int st.Safara_engine.Store.st_corrupt);
               ("entries", j_int st.Safara_engine.Store.st_entries);
               ("total_bytes", j_int st.Safara_engine.Store.st_total_bytes) ])
        ]
  in
  j_obj
    ([ ("pool_jobs", j_int s.Eval.st_jobs);
      ("job_counts", j_list (List.map j_int s.Eval.st_job_counts));
      ("compile_cache",
       j_obj
         [ ("hits", j_int s.Eval.st_compile_hits);
           ("misses", j_int s.Eval.st_compile_misses) ]);
      ("sim_cache",
       j_obj
         [ ("hits", j_int s.Eval.st_sim_hits);
           ("misses", j_int s.Eval.st_sim_misses) ]);
      ("compile_s", j_float s.Eval.st_compile_s);
      ("sim_s", j_float s.Eval.st_sim_s);
      ("passes",
       j_obj
         (List.map
            (fun (name, runs, secs) ->
              (name, j_obj [ ("runs", j_int runs); ("seconds", j_float secs) ]))
            s.Eval.st_pass_s));
       ("wall_s", j_float s.Eval.st_wall_s) ]
    @ store_fields)

let run_json ~eng ~arch () =
  let table1 = reg_rows_json (Experiments.table1 ~eng ~arch ()) in
  let table2 = reg_rows_json (Experiments.table2 ~eng ~arch ()) in
  let offsets =
    j_list
      (List.map
         (fun (r : Experiments.offsets_demo) ->
           j_obj
             [ ("config", j_str r.Experiments.od_config);
               ("dope_loads", j_int r.Experiments.od_dope_loads);
               ("instructions", j_int r.Experiments.od_offset_instrs);
               ("regs", j_int r.Experiments.od_regs) ])
         (Experiments.offsets ~eng ~arch ()))
  in
  let fig7 = speedup_rows_json (Experiments.fig7 ~eng ~arch ()) in
  let fig9 = speedup_rows_json (Experiments.fig9 ~eng ~arch ()) in
  let fig10 = speedup_rows_json (Experiments.fig10 ~eng ~arch ()) in
  let fig11 = norm_rows_json (Experiments.fig11 ~eng ~arch ()) in
  let fig12 = norm_rows_json (Experiments.fig12 ~eng ~arch ()) in
  let ablations =
    j_list
      (List.map
         (fun (r : Experiments.ablation_row) ->
           j_obj
             [ ("name", j_str r.Experiments.ab_name);
               ("description", j_str r.Experiments.ab_description);
               ("slowdowns", j_assoc j_float r.Experiments.ab_speedups) ])
         (Experiments.ablations ~eng ~arch ()))
  in
  let crossarch =
    (* the one figure that is inherently multi-arch: each row carries
       per-arch speedups keyed by registry name *)
    j_list
      (List.map
         (fun (r : Experiments.crossarch_row) ->
           j_obj
             [ ("id", j_str r.Experiments.ca_id);
               ("speedups", j_assoc j_float r.Experiments.ca_values) ])
         (Experiments.crossarch ~eng ()))
  in
  let unroll =
    j_list
      (List.map
         (fun (r : Experiments.unroll_row) ->
           j_obj
             [ ("id", j_str r.Experiments.ur_id);
               ("speedups",
                j_list
                  (List.map
                     (fun (f, s) -> j_list [ j_int f; j_float s ])
                     r.Experiments.ur_speedups));
               ("regs",
                j_list
                  (List.map
                     (fun (f, n) -> j_list [ j_int f; j_int n ])
                     r.Experiments.ur_regs)) ])
         (Experiments.unroll_study ~eng ~arch ()))
  in
  print_string
    (j_obj
       [ ("arch", j_str arch.Safara_gpu.Arch.name);
         ("arch_key", j_str arch.Safara_gpu.Arch.key);
         ("table1", table1);
         ("table2", table2);
         ("offsets", offsets);
         ("fig7", fig7);
         ("fig9", fig9);
         ("fig10", fig10);
         ("fig11", fig11);
         ("fig12", fig12);
         ("ablations", ablations);
         ("crossarch", crossarch);
         ("unroll", unroll);
         ("engine", engine_json eng) ]);
  print_newline ()

(* --- tune: autotuning search over (config x unroll x arch) ----------- *)
(* Runs Safara_tune's grid search for every (workload, architecture)
   pair through one shared engine, so coincident points are cache
   hits, and reports the winner per pair plus the engine's sim-cache
   hit rate over the whole search. The search revisits every warmed
   point at least once (argmin + baseline reads), so the hit rate must
   exceed 50% — a hard gate in --smoke mode, like the serve gate. *)

let tune_smoke_ids = [ "303.ostencil"; "355.seismic" ]

let run_tune ~smoke ~eng ~archs () =
  let workloads =
    if smoke then List.map Registry.find tune_smoke_ids else Registry.all
  in
  let jobs = Eval.jobs eng in
  Printf.printf
    "Autotuning: grid search over (SAFARA config x unroll factor) per \
     workload and architecture\n\
     %d workloads x %d archs, %d points each; objective: timing simulator, \
     profile Full; -j %d\n\n"
    (List.length workloads) (List.length archs) Safara_tune.Tune.space_size
    jobs;
  let s0 = Eval.stats eng in
  let results =
    List.concat_map
      (fun (arch : Safara_gpu.Arch.t) ->
        List.map
          (fun w ->
            let r = Safara_tune.Tune.search eng ~arch w in
            print_string (Safara_tune.Tune.render r);
            r)
          workloads)
      archs
  in
  let s1 = Eval.stats eng in
  let hits = s1.Eval.st_sim_hits - s0.Eval.st_sim_hits in
  let misses = s1.Eval.st_sim_misses - s0.Eval.st_sim_misses in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "\nsearch sim-cache: %d hits / %d misses (%.1f%% hit rate)\n" hits misses
    (100. *. hit_rate);
  let json =
    j_obj
      [ ("mode", j_str (if smoke then "smoke" else "full"));
        ("jobs", j_int jobs);
        ("strategy", j_str "grid");
        ("space", j_int Safara_tune.Tune.space_size);
        ("config_labels", j_list (List.map j_str Safara_tune.Tune.config_labels));
        ("unroll_factors", j_list (List.map j_int Safara_tune.Tune.unroll_factors));
        ("archs",
         j_list
           (List.map
              (fun (a : Safara_gpu.Arch.t) -> j_str a.Safara_gpu.Arch.key)
              archs));
        ("results",
         j_list
           (List.map
              (fun (r : Safara_tune.Tune.result) ->
                j_obj
                  [ ("id", j_str r.Safara_tune.Tune.tr_id);
                    ("arch", j_str r.Safara_tune.Tune.tr_arch);
                    ("best",
                     j_obj
                       [ ("config",
                          j_str r.Safara_tune.Tune.tr_best
                            .Safara_tune.Tune.pt_config);
                         ("unroll",
                          j_int r.Safara_tune.Tune.tr_best
                            .Safara_tune.Tune.pt_unroll) ]);
                    ("best_ms", j_float r.Safara_tune.Tune.tr_best_ms);
                    ("default_ms", j_float r.Safara_tune.Tune.tr_default_ms);
                    ("improvement", j_float r.Safara_tune.Tune.tr_improvement);
                    ("evaluated", j_int r.Safara_tune.Tune.tr_evaluated);
                    ("space", j_int r.Safara_tune.Tune.tr_space);
                    ("kernels",
                     j_assoc j_float r.Safara_tune.Tune.tr_kernels) ])
              results));
        ("sim_cache",
         j_obj
           [ ("hits", j_int hits);
             ("misses", j_int misses);
             ("hit_rate", j_float hit_rate) ]);
        ("engine", engine_json eng) ]
  in
  let oc = open_out "BENCH_tune.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_tune.json\n";
  if smoke then begin
    if hit_rate <= 0.5 then begin
      Printf.eprintf
        "bench tune: sim-cache hit rate %.1f%% is below the 50%% gate\n"
        (100. *. hit_rate);
      exit 1
    end;
    List.iter
      (fun (r : Safara_tune.Tune.result) ->
        if r.Safara_tune.Tune.tr_improvement < 1.0 then begin
          Printf.eprintf
            "bench tune: %s on %s: grid best (%.4f ms) worse than default \
             (%.4f ms)\n"
            r.Safara_tune.Tune.tr_id r.Safara_tune.Tune.tr_arch
            r.Safara_tune.Tune.tr_best_ms r.Safara_tune.Tune.tr_default_ms;
          exit 1
        end)
      results
  end

(* --- loopopt: before/after evidence for the loop-aware passes --------- *)

(* The CI artifact for the indvar/memmerge pipeline extension and the
   per-architecture address-cost tables: for each workload ×
   architecture it compiles Base twice — once as-is, once with the
   loop passes disabled — and records per-kernel hot-loop static op
   counts plus the simulated end-to-end time of both variants.
   suite_loopopt pins two of the op counts as goldens; this mode
   publishes the whole matrix (BENCH_loopopt.json) and, under --smoke,
   gates on the stencil/umesh hot loops shrinking and on the timing
   improving on at least four workload × arch pairs. *)

let loopopt_ids = [ "303.ostencil"; "360.ilbdc"; "350.md"; "364.umesh" ]
let loopopt_passes = [ "indvar"; "memmerge" ]

(* the hottest natural-loop body, the same measurement suite_loopopt
   pins: indvar's preheader clones make whole-kernel static counts
   grow, so the win only shows inside the loop *)
let hot_loop_ops (k : Safara_vir.Kernel.t) =
  let cfg = Safara_vir.Cfg.build k.Safara_vir.Kernel.code in
  List.fold_left
    (fun acc (l : Safara_vir.Cfg.loop) ->
      let ops = ref 0 in
      Array.iteri
        (fun b in_body ->
          if in_body then begin
            let blk = cfg.Safara_vir.Cfg.blocks.(b) in
            ops := !ops + blk.Safara_vir.Cfg.last - blk.Safara_vir.Cfg.first + 1
          end)
        l.Safara_vir.Cfg.body;
      max acc !ops)
    0
    (Safara_vir.Cfg.loops cfg)

let run_loopopt ~smoke ~eng ~archs () =
  let profile = Safara_core.Compiler.Base in
  let ws = List.map Registry.find loopopt_ids in
  let job_on arch w = Eval.job ~arch profile w in
  let job_off arch w = Eval.job ~arch ~disable:loopopt_passes profile w in
  Eval.warm eng
    (List.concat_map
       (fun w -> List.concat_map (fun a -> [ job_on a w; job_off a w ]) archs)
       ws);
  let rows =
    List.concat_map
      (fun (w : Workload.t) ->
        List.map
          (fun (arch : Safara_gpu.Arch.t) ->
            let con = Eval.compiled eng (job_on arch w)
            and coff = Eval.compiled eng (job_off arch w) in
            let kernels =
              List.map2
                (fun ((kon : Safara_vir.Kernel.t), _)
                     ((koff : Safara_vir.Kernel.t), _) ->
                  ( kon.Safara_vir.Kernel.kname,
                    hot_loop_ops kon,
                    hot_loop_ops koff ))
                con.Safara_core.Compiler.c_kernels
                coff.Safara_core.Compiler.c_kernels
            in
            let ms_on = Eval.total_ms eng (job_on arch w)
            and ms_off = Eval.total_ms eng (job_off arch w) in
            (w.Workload.id, arch, kernels, ms_on, ms_off))
          archs)
      ws
  in
  Printf.printf
    "Loop-aware passes (indvar+memmerge): Base profile before/after\n";
  Printf.printf
    "--------------------------------------------------------------\n";
  List.iter
    (fun (id, (arch : Safara_gpu.Arch.t), kernels, ms_on, ms_off) ->
      Printf.printf "%-14s %-8s %9.3f ms -> %9.3f ms (%5.2fx)\n" id
        arch.Safara_gpu.Arch.key ms_off ms_on (ms_off /. ms_on);
      List.iter
        (fun (kn, on_ops, off_ops) ->
          if off_ops <> on_ops then
            Printf.printf "    %-20s hot-loop ops %3d -> %3d\n" kn off_ops
              on_ops)
        kernels)
    rows;
  let json =
    j_obj
      [ ("schema", j_str "loopopt-v1");
        ("passes", j_list (List.map j_str loopopt_passes));
        ("arch_addr_cost",
         j_obj
           (List.map
              (fun (arch : Safara_gpu.Arch.t) ->
                let t = Safara_gpu.Addrcost.for_arch arch in
                ( arch.Safara_gpu.Arch.key,
                  j_obj
                    [ ("mul_add", j_int t.Safara_gpu.Addrcost.mul_add);
                      ("scale_and_base",
                       j_int t.Safara_gpu.Addrcost.scale_and_base);
                      ("dope_load", j_int t.Safara_gpu.Addrcost.dope_load);
                      ("ro_issue", j_int t.Safara_gpu.Addrcost.ro_issue) ] ))
              archs));
        ("rows",
         j_list
           (List.map
              (fun (id, (arch : Safara_gpu.Arch.t), kernels, ms_on, ms_off) ->
                j_obj
                  [ ("id", j_str id);
                    ("arch", j_str arch.Safara_gpu.Arch.key);
                    ("ms_with_passes", j_float ms_on);
                    ("ms_without", j_float ms_off);
                    ("speedup", j_float (ms_off /. ms_on));
                    ("kernels",
                     j_list
                       (List.map
                          (fun (kn, on_ops, off_ops) ->
                            j_obj
                              [ ("kernel", j_str kn);
                                ("hot_loop_ops_with", j_int on_ops);
                                ("hot_loop_ops_without", j_int off_ops) ])
                          kernels)) ])
              rows)) ]
  in
  let oc = open_out "BENCH_loopopt.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote BENCH_loopopt.json\n";
  if smoke then begin
    List.iter
      (fun (want_id, want_kernel) ->
        List.iter
          (fun (id, (arch : Safara_gpu.Arch.t), kernels, _, _) ->
            if String.equal id want_id then
              List.iter
                (fun (kn, on_ops, off_ops) ->
                  if String.equal kn want_kernel && on_ops >= off_ops then begin
                    Printf.eprintf
                      "bench loopopt: %s/%s on %s: hot-loop ops did not \
                       shrink (%d with passes vs %d without)\n"
                      id kn arch.Safara_gpu.Arch.key on_ops off_ops;
                    exit 1
                  end)
                kernels)
          rows)
      [ ("303.ostencil", "stencil"); ("364.umesh", "edge_flux") ];
    let improved =
      List.length
        (List.filter (fun (_, _, _, ms_on, ms_off) -> ms_on < ms_off) rows)
    in
    if improved < 4 then begin
      Printf.eprintf
        "bench loopopt: timing improved on only %d workload×arch pairs \
         (need >= 4)\n"
        improved;
      exit 1
    end;
    Printf.printf "smoke gates: hot loops shrink, timing improves on %d/%d \
                   pairs\n"
      improved (List.length rows)
  end

(* --- entry point ----------------------------------------------------- *)

let usage () =
  Printf.eprintf
    "usage: main.exe \
     [fig7|fig9|fig10|fig11|fig12|table1|table2|offsets|ablations|crossarch|unroll|micro|sim|serve|tune|loopopt|json|all] \
     [-j N] [--smoke] [--min-runs N] [--engine reference|decoded|threaded] \
     [--arch NAME] [--store DIR] [--par-threshold N] [--par-min-chunk N]\n";
  exit 2

let () =
  let jobs = ref None in
  let smoke = ref false in
  let min_runs = ref None in
  let arch_override = ref None in
  let store_dir = ref None in
  let cmds = ref [] in
  let rec parse i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
      | "-j" | "--jobs" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> jobs := Some n
          | _ -> usage ());
          parse (i + 2)
      | "--smoke" ->
          smoke := true;
          parse (i + 1)
      | "--min-runs" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> min_runs := Some n
          | _ -> usage ());
          parse (i + 2)
      | "--arch" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (* registry-checked like --engine: unknown names are
             rejected with the list of valid ones *)
          (match Safara_gpu.Arch.of_name Sys.argv.(i + 1) with
          | a -> arch_override := Some a
          | exception Failure msg ->
              Printf.eprintf "main.exe: %s\n" msg;
              exit 2);
          parse (i + 2)
      | "--store" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          store_dir := Some Sys.argv.(i + 1);
          parse (i + 2)
      | "--par-threshold" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> Safara_sim.Interp.parallel_threshold := n
          | _ -> usage ());
          parse (i + 2)
      | "--par-min-chunk" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 1 -> Safara_sim.Interp.parallel_min_chunk_ops := n
          | _ -> usage ());
          parse (i + 2)
      | "--engine" ->
          if i + 1 >= Array.length Sys.argv then usage ();
          (* registry-checked: an unknown engine name is rejected with
             the list of valid ones, like --disable-pass in saraccc *)
          (match Safara_sim.Decode.engine_of_string Sys.argv.(i + 1) with
          | e -> Safara_sim.Decode.engine := e
          | exception Failure msg ->
              Printf.eprintf "main.exe: %s\n" msg;
              exit 2);
          parse (i + 2)
      | arg when String.length arg > 0 && arg.[0] = '-' -> usage ()
      | arg ->
          cmds := arg :: !cmds;
          parse (i + 1))
    end
  in
  parse 1;
  let cmd = match !cmds with [] -> "all" | [ c ] -> c | _ -> usage () in
  let arch = Option.value !arch_override ~default:Safara_gpu.Arch.default in
  (* --store memoizes compile+simulate results across bench runs via
     the persistent on-disk artifact store (same format as serve) *)
  let store = Option.map Safara_engine.Store.open_store !store_dir in
  let eng = Eval.create ?jobs:!jobs ?store () in
  (* determinism guard: parallel evaluation must reproduce the serial
     results exactly (debug builds only) *)
  if Eval.jobs eng > 1 then Eval.self_check eng (Registry.find "303.ostencil");
  (match cmd with
  | "fig7" -> run_fig7 ~eng ~arch ()
  | "fig9" -> run_fig9 ~eng ~arch ()
  | "fig10" -> run_fig10 ~eng ~arch ()
  | "fig11" -> run_fig11 ~eng ~arch ()
  | "fig12" -> run_fig12 ~eng ~arch ()
  | "table1" -> run_table1 ~eng ~arch ()
  | "table2" -> run_table2 ~eng ~arch ()
  | "offsets" -> run_offsets ~eng ~arch ()
  | "ablations" -> run_ablations ~eng ~arch ()
  | "crossarch" -> run_crossarch ~eng ()
  | "unroll" -> run_unroll ~eng ~arch ()
  | "micro" -> run_micro ~arch ()
  | "sim" ->
      run_sim ~smoke:!smoke ~min_runs:!min_runs ~pool:(Eval.pool eng) ~arch ()
  | "serve" -> run_serve ~smoke:!smoke ~jobs:!jobs ()
  | "tune" ->
      let archs =
        match !arch_override with
        | Some a -> [ a ]
        | None ->
            if !smoke then [ Safara_gpu.Arch.kepler_k20xm; Safara_gpu.Arch.fermi_like ]
            else Safara_gpu.Arch.registry
      in
      run_tune ~smoke:!smoke ~eng ~archs ()
  | "loopopt" ->
      let archs =
        match !arch_override with
        | Some a -> [ a ]
        | None -> Safara_gpu.Arch.registry
      in
      run_loopopt ~smoke:!smoke ~eng ~archs ()
  | "json" -> run_json ~eng ~arch ()
  | "all" -> all ~eng ~arch ()
  | other ->
      Printf.eprintf
        "unknown experiment %S; expected \
         fig7|fig9|fig10|fig11|fig12|table1|table2|offsets|ablations|crossarch|unroll|micro|sim|serve|tune|loopopt|json|all\n"
        other;
      exit 2);
  if cmd <> "micro" && cmd <> "sim" && cmd <> "serve" then
    prerr_string (Eval.render_stats eng);
  Eval.shutdown eng
