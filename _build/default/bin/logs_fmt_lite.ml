(* Minimal Logs reporter (the logs.fmt sub-library is not vendored in
   this environment; this prints "[src] level: message" to stderr). *)

let reporter () =
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf (fun ?header ?tags fmt ->
        ignore header;
        ignore tags;
        Format.kfprintf k Format.err_formatter
          ("[%s] %s: " ^^ fmt ^^ "@.")
          (Logs.Src.name src)
          (Logs.level_to_string (Some level)))
  in
  { Logs.report }
