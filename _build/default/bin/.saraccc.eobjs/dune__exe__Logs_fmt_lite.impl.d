bin/logs_fmt_lite.ml: Format Logs
