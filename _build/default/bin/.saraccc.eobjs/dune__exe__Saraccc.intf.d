bin/saraccc.mli:
