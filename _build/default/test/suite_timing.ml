(* Direct unit tests of the SMX timing model: hand-built VIR kernels
   with known cycle accounting — issue throughput, scoreboard
   dependences, memory-pipe serialization, scheduler partitioning. *)

module I = Safara_vir.Instr
module V = Safara_vir.Vreg
module T = Safara_ir.Types
module K = Safara_vir.Kernel

let arch = Safara_gpu.Arch.kepler_k20xm
let latency = Safara_gpu.Latency.kepler

let f64 rid = { V.rid; rty = T.F64 }
let r32 rid = { V.rid; rty = T.I32 }
let r64 rid = { V.rid; rty = T.I64 }

let kernel code =
  {
    K.kname = "t";
    params = [];
    code = Array.of_list (code @ [ I.Ret ]);
    block = (32, 1, 1);
    axes = [];
    shared_bytes = 0;
  }

let simulate ?(blocks = 1) k =
  let prog = Safara_ir.Program.make "p" [] in
  let mem = Safara_sim.Memory.create () in
  Safara_sim.Memory.alloc mem ~name:"scratch" ~elem:T.F64 ~length:4096;
  let env = { Safara_sim.Interp.scalars = []; mem } in
  Safara_sim.Timing.simulate_resident_set ~arch ~latency ~prog ~env
    ~grid:(blocks, 1, 1) ~blocks_per_sm:blocks k

(* n independent 32-bit adds: issue cost 1 each *)
let independent_adds n =
  List.init n (fun i ->
      I.Bin { op = I.Add; dst = r32 (i + 1); a = I.Imm 1; b = I.Imm 2 })

(* f64 adds dual-issue: cost 2 per instruction on the warp pipeline *)
let f64_adds n =
  List.init n (fun i ->
      I.Bin { op = I.Add; dst = f64 (i + 1); a = I.FImm 1.0; b = I.FImm 2.0 })

(* n dependent adds: a serial chain paying the ALU latency each step *)
let dependent_adds n =
  I.Mov { dst = f64 0; src = I.FImm 0.0 }
  :: List.init n (fun i ->
         I.Bin { op = I.Add; dst = f64 (i + 1); a = I.Reg (f64 i); b = I.FImm 1.0 })

let test_independent_issue_rate () =
  let st = simulate (kernel (independent_adds 200)) in
  (* one warp on one scheduler: ~1 instruction per cycle *)
  Alcotest.(check bool) "close to issue-limited" true
    (st.Safara_sim.Timing.cycles >= 200. && st.Safara_sim.Timing.cycles < 260.);
  (* f64 arithmetic issues at half rate *)
  let st64 = simulate (kernel (f64_adds 200)) in
  Alcotest.(check bool) "f64 at half rate" true
    (st64.Safara_sim.Timing.cycles >= 400. && st64.Safara_sim.Timing.cycles < 470.)

let test_dependent_chain_latency () =
  let st = simulate (kernel (dependent_adds 50)) in
  (* f64 dependent adds pay the f64 latency each step *)
  let expected = 50. *. float_of_int latency.Safara_gpu.Latency.f64_latency in
  Alcotest.(check bool) "close to latency-limited" true
    (st.Safara_sim.Timing.cycles >= expected -. 30.
    && st.Safara_sim.Timing.cycles < expected +. 60.)

let test_warps_hide_dependent_latency () =
  (* the same dependent chain in many warps: chains interleave, so the
     per-warp latency is hidden and total time grows slowly *)
  let one = simulate (kernel (dependent_adds 50)) in
  let k8 = { (kernel (dependent_adds 50)) with K.block = (256, 1, 1) } in
  let eight = simulate k8 in
  Alcotest.(check bool) "8 warps nearly free" true
    (eight.Safara_sim.Timing.cycles < 1.6 *. one.Safara_sim.Timing.cycles)

let mem_op ~access =
  let addr = r64 100 in
  [
    I.Mov { dst = addr; src = I.Imm 65536 };
    I.Ld
      {
        dst = f64 0;
        addr;
        mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = access; m_bytes = 8 };
        note = "scratch";
      };
    I.St
      {
        src = I.Reg (f64 0);
        addr;
        mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = access; m_bytes = 8 };
        note = "scratch";
      };
  ]

let test_uncoalesced_transactions () =
  let rec repeat n l = if n = 0 then [] else l @ repeat (n - 1) l in
  let co = simulate (kernel (repeat 20 (mem_op ~access:Safara_gpu.Memspace.Coalesced))) in
  let un =
    simulate (kernel (repeat 20 (mem_op ~access:(Safara_gpu.Memspace.Uncoalesced 32))))
  in
  Alcotest.(check bool) "many more transactions" true
    (un.Safara_sim.Timing.transactions >= 8 * co.Safara_sim.Timing.transactions);
  Alcotest.(check bool) "uncoalesced slower" true
    (un.Safara_sim.Timing.cycles > 1.2 *. co.Safara_sim.Timing.cycles)

let test_label_costs_nothing () =
  let st1 = simulate (kernel (independent_adds 10)) in
  let with_labels =
    List.concat_map (fun i -> [ I.Label (Printf.sprintf "L%d" (Hashtbl.hash i)) ; i ])
      (independent_adds 10)
  in
  let st2 = simulate (kernel with_labels) in
  Alcotest.(check int) "same instruction count" st1.Safara_sim.Timing.instructions
    st2.Safara_sim.Timing.instructions

let test_scheduler_partitioning () =
  (* 4 warps (one per scheduler) issue independent work fully in
     parallel: time ~ the one-warp time, not 4x *)
  let one = simulate (kernel (independent_adds 100)) in
  let k4 = { (kernel (independent_adds 100)) with K.block = (128, 1, 1) } in
  let four = simulate k4 in
  Alcotest.(check bool) "4 schedulers in parallel" true
    (four.Safara_sim.Timing.cycles < 1.5 *. one.Safara_sim.Timing.cycles);
  (* 8 warps share 4 schedulers: roughly 2x the issue time *)
  let k8 = { (kernel (independent_adds 100)) with K.block = (256, 1, 1) } in
  let eight = simulate k8 in
  Alcotest.(check bool) "oversubscribed schedulers serialize" true
    (eight.Safara_sim.Timing.cycles > 1.5 *. one.Safara_sim.Timing.cycles)

let test_sfu_issue_cost () =
  let sqrt_chain n =
    I.Mov { dst = f64 0; src = I.FImm 2.0 }
    :: List.init n (fun i -> I.Una { op = I.Sqrt; dst = f64 (i + 1); a = I.Reg (f64 0) })
  in
  let alu = simulate (kernel (independent_adds 60)) in
  let sfu = simulate (kernel (sqrt_chain 60)) in
  (* SFU ops occupy the warp pipeline ~4x longer than simple ALU ops *)
  Alcotest.(check bool) "SFU ops issue slower" true
    (sfu.Safara_sim.Timing.cycles > 3. *. alu.Safara_sim.Timing.cycles)

let suite =
  [
    Alcotest.test_case "independent issue rate" `Quick test_independent_issue_rate;
    Alcotest.test_case "dependent chain latency" `Quick test_dependent_chain_latency;
    Alcotest.test_case "warps hide latency" `Quick test_warps_hide_dependent_latency;
    Alcotest.test_case "uncoalesced transactions" `Quick test_uncoalesced_transactions;
    Alcotest.test_case "labels are free" `Quick test_label_costs_nothing;
    Alcotest.test_case "scheduler partitioning" `Quick test_scheduler_partitioning;
    Alcotest.test_case "SFU issue cost" `Quick test_sfu_issue_cost;
  ]
