(* Fortran-style lower-bound support: declarations like
   double a[1:n][1:m] model Fortran allocatables whose dope vectors
   carry lower bounds — the t0..t2 subtractions of the paper's §IV.A
   listing. *)

module I = Safara_vir.Instr
let arch = Safara_gpu.Arch.kepler_k20xm

let test_parse_fortran_decl () =
  let src = "param int n;\ndouble a[1:n][1:64];\n#pragma acc kernels\n{ a[1][1] = 0.0; }" in
  let prog = Safara_lang.Frontend.compile src in
  let a = Safara_ir.Program.find_array prog "a" in
  match a.Safara_ir.Array_info.dims with
  | [ d0; d1 ] ->
      Alcotest.(check bool) "lb0 = 1" true (d0.Safara_ir.Dim.lower = Safara_ir.Dim.Const 1);
      Alcotest.(check bool) "ext1 = 64" true (d1.Safara_ir.Dim.extent = Safara_ir.Dim.Const 64)
  | _ -> Alcotest.fail "rank"

let fortran_src =
  {|
param int n;
param int m;
in double a[1:n][1:m];
double o[1:n][1:m];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (j = 1; j <= n; j++) {
    #pragma acc loop seq
    for (i = 2; i <= m; i++) {
      o[j][i] = a[j][i] * 2.0 + a[j][i-1];
    }
  }
}
|}

let test_fortran_semantics () =
  (* 1-based subscripts must hit the same dense cells a 0-based layout
     would: check against an OCaml reference *)
  let n, m = 12, 10 in
  let c = Safara_core.Compiler.compile_src Safara_core.Compiler.Base fortran_src in
  let env =
    Safara_core.Compiler.make_env c
      ~scalars:[ ("n", Safara_sim.Value.I n); ("m", Safara_sim.Value.I m) ]
  in
  let a = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "a" in
  Array.iteri (fun i _ -> a.(i) <- float_of_int i) a;
  Safara_core.Compiler.run_functional c env;
  let o = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "o" in
  (* element (j, i) with 1-based bounds lives at (j-1)*m + (i-1) *)
  let idx j i = ((j - 1) * m) + (i - 1) in
  for j = 1 to n do
    for i = 2 to m do
      let expected = (float_of_int (idx j i) *. 2.0) +. float_of_int (idx j (i - 1)) in
      if o.(idx j i) <> expected then
        Alcotest.fail (Printf.sprintf "o[%d][%d]: expected %g got %g" j i expected o.(idx j i))
    done
  done

let test_fortran_profiles_agree () =
  let run profile =
    let c = Safara_core.Compiler.compile_src profile fortran_src in
    let env =
      Safara_core.Compiler.make_env c
        ~scalars:[ ("n", Safara_sim.Value.I 8); ("m", Safara_sim.Value.I 9) ]
    in
    let a = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "a" in
    Array.iteri (fun i _ -> a.(i) <- cos (float_of_int i)) a;
    Safara_core.Compiler.run_functional c env;
    Array.copy (Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "o")
  in
  let base = run Safara_core.Compiler.Base in
  List.iter
    (fun p ->
      if run p <> base then
        Alcotest.fail (Safara_core.Compiler.profile_name p ^ " differs"))
    [ Safara_core.Compiler.Safara_only; Safara_core.Compiler.Full;
      Safara_core.Compiler.Pgi_like ]

(* the paper's §IV.A count: three same-shaped Fortran arrays need
   3 lower bounds + 2 extents each = 15 dope scalars without dim, and
   one shared set of 5 with it *)
let paper_iv_a ~dim =
  Printf.sprintf
    {|
param int nx;
param int ny;
param int nz;
double vz_1[1:nz][1:ny][1:nx];
double vz_2[1:nz][1:ny][1:nx];
double vz_3[1:nz][1:ny][1:nx];
out double value_dz[1:nz][1:ny][1:nx];
#pragma acc kernels name(k) %s
{
  #pragma acc loop gang vector(64)
  for (i = 1; i <= nx; i++) {
    #pragma acc loop seq
    for (k = 2; k <= nz; k++) {
      value_dz[k][1][i] = vz_1[k][1][i] + vz_2[k][1][i] + vz_3[k][1][i];
    }
  }
}
|}
    (if dim then "dim([1:nz][1:ny][1:nx](vz_1, vz_2, vz_3))" else "")

let dope_loads src =
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let k =
    Safara_vir.Codegen.compile_region ~arch prog
      (List.hd prog.Safara_ir.Program.regions)
  in
  Safara_vir.Kernel.count_instr k ~f:(function
    | I.Ldp { param; _ } ->
        Str_helpers.contains param ".len" || Str_helpers.contains param ".lo"
    | _ -> false)

let test_paper_15_scalars () =
  (* without dim: 3 vz arrays x (3 lowers + 2 extents) = 15, exactly
     the paper's listing; value_dz adds its own 5 *)
  Alcotest.(check int) "20 dope loads (15 for the vz group)" 20
    (dope_loads (paper_iv_a ~dim:false));
  (* with dim stating the dimensions, the group's bounds become
     compiler knowledge: the literal lower bounds fold away entirely
     (the paper's recommendation to provide complete information,
     "the compiler can simplify further the offset computation, in
     particular when the lower bound is zero") and only the two
     symbolic extents remain, plus value_dz's own 5 *)
  Alcotest.(check int) "7 dope loads (2 shared + 5)" 7 (dope_loads (paper_iv_a ~dim:true))

let test_fortran_emit_roundtrip () =
  let prog = Safara_lang.Frontend.compile fortran_src in
  let emitted = Safara_lang.Emit.program prog in
  Alcotest.(check bool) "lower bound printed" true
    (Str_helpers.contains emitted "[1:n]");
  match Safara_lang.Frontend.compile emitted with
  | _ -> ()
  | exception e -> Alcotest.fail ("reparse failed: " ^ Printexc.to_string e)

let test_runtime_verify_lower_bounds () =
  (* same extents but different lower bounds: the dim group must be
     rejected at run time *)
  let src =
    {|
param int n;
double u[1:n];
double v[0:n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (i = 1; i <= n; i++) {
    u[i] = 1.0;
    v[0] = 2.0;
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let r0 = List.hd prog.Safara_ir.Program.regions in
  let r =
    { r0 with Safara_ir.Region.dim_groups =
        [ { Safara_ir.Region.stated_dims = None; group_arrays = [ "u"; "v" ] } ] }
  in
  Alcotest.(check bool) "mismatched lowers rejected" true
    (Safara_transform.Clause_check.runtime_verify ~env:[ ("n", 8) ] prog r <> [])

let suite =
  [
    Alcotest.test_case "parse fortran decls" `Quick test_parse_fortran_decl;
    Alcotest.test_case "fortran semantics" `Quick test_fortran_semantics;
    Alcotest.test_case "fortran profiles agree" `Quick test_fortran_profiles_agree;
    Alcotest.test_case "paper's 15 dope scalars" `Quick test_paper_15_scalars;
    Alcotest.test_case "fortran emit roundtrip" `Quick test_fortran_emit_roundtrip;
    Alcotest.test_case "runtime lower-bound check" `Quick test_runtime_verify_lower_bounds;
  ]
