(* Tests for affine analysis, dependence testing, parallelism,
   coalescing and reuse-candidate discovery — including the paper's
   running examples (Fig 3 and Fig 5). *)

open Safara_analysis
module E = Safara_ir.Expr
module S = Safara_ir.Stmt
module M = Safara_gpu.Memspace

let aff ?(indices = [ "i"; "j"; "k" ]) src =
  let ast = Safara_lang.Parser.parse_expr src in
  (* a tiny environment for lowering standalone expressions *)
  let rec lower = function
    | Safara_lang.Ast.Int n -> E.int n
    | Safara_lang.Ast.Var v -> E.var v
    | Safara_lang.Ast.Bin (op, a, b) -> E.Binop (op, lower a, lower b)
    | Safara_lang.Ast.Un (op, a) -> E.Unop (op, lower a)
    | Safara_lang.Ast.Index (a, subs) -> E.Load (a, List.map lower subs)
    | Safara_lang.Ast.Cast (ty, a) -> E.Cast (Safara_lang.Ast.ty_to_dtype ty, lower a)
    | _ -> failwith "unsupported in test helper"
  in
  Affine.analyze ~indices (lower ast)

let test_affine_simple () =
  match aff "i" with
  | Some f ->
      Alcotest.(check int) "coeff i" 1 (Affine.coeff f "i");
      Alcotest.(check int) "const" 0 f.Affine.const
  | None -> Alcotest.fail "i should be affine"

let test_affine_shifted () =
  match aff "2*i - 3" with
  | Some f ->
      Alcotest.(check int) "coeff" 2 (Affine.coeff f "i");
      Alcotest.(check int) "const" (-3) f.Affine.const
  | None -> Alcotest.fail "2*i-3 should be affine"

let test_affine_multi_index () =
  match aff "i + 4*j + 1" with
  | Some f ->
      Alcotest.(check int) "i" 1 (Affine.coeff f "i");
      Alcotest.(check int) "j" 4 (Affine.coeff f "j");
      Alcotest.(check int) "const" 1 f.Affine.const
  | None -> Alcotest.fail "should be affine"

let test_affine_symbolic_rest () =
  (* n is not an index: additive symbolic rest *)
  match aff "i + n" with
  | Some f ->
      Alcotest.(check bool) "has rest" true (f.Affine.rest <> None);
      Alcotest.(check int) "i" 1 (Affine.coeff f "i")
  | None -> Alcotest.fail "i+n should be affine"

let test_affine_rest_canonical () =
  (* n + m and m + n must normalize identically *)
  match (aff "i + n + m", aff "i + m + n") with
  | Some a, Some b -> Alcotest.(check bool) "comparable" true (Affine.comparable a b)
  | _ -> Alcotest.fail "both should be affine"

let test_affine_rejects () =
  Alcotest.(check bool) "i*j" true (aff "i*j" = None);
  Alcotest.(check bool) "i/2" true (aff "i/2" = None);
  Alcotest.(check bool) "a[i]" true (aff "a[i]" = None);
  (* index-free division is a symbolic atom, not a rejection *)
  Alcotest.(check bool) "n/2 ok" true (aff "n/2" <> None)

let test_affine_distance () =
  match (aff "i - 1", aff "i + 1") with
  | Some a, Some b ->
      Alcotest.(check (option int)) "distance" (Some 2) (Affine.distance a b)
  | _ -> Alcotest.fail "affine"

let test_affine_scaled_symbolic () =
  (* (k - t2) * t4 : affine in k only if t4 were constant; it is
     symbolic, so this must be rejected *)
  Alcotest.(check bool) "symbolic*index rejected" true (aff "t4 * (k - 1)" = None)

(* --- dependence ----------------------------------------------------- *)

let body_of src =
  let prog = Safara_lang.Frontend.compile src in
  (List.hd prog.Safara_ir.Program.regions).Safara_ir.Region.body

let fig3 =
  {|
param int n;
double a[n];
double b[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(128)
  for (i = 1; i <= n - 2; i++) {
    a[i] = (b[i] + b[i+1]) / 2.0;
  }
}
|}

let test_fig3_input_dependence () =
  (* b[i] and b[i+1]: input dependence with distance 1; no flow dep *)
  let body = body_of fig3 in
  let deps = Dependence.region_deps ~include_input:true body in
  let input_deps =
    List.filter (fun d -> d.Dependence.d_kind = Dependence.Input) deps
  in
  Alcotest.(check int) "one input dep" 1 (List.length input_deps);
  (match input_deps with
  | [ d ] -> (
      match d.Dependence.d_dist with
      | [ Dependence.D 1 ] -> ()
      | [ Dependence.D (-1) ] -> ()
      | dist ->
          Alcotest.fail
            (Format.asprintf "unexpected distance %a"
               (Format.pp_print_list Dependence.pp_distance)
               dist))
  | _ -> ());
  let non_input = List.filter (fun d -> d.Dependence.d_kind <> Dependence.Input) deps in
  Alcotest.(check int) "no non-input deps" 0 (List.length non_input)

let test_fig3_parallel () =
  let body = body_of fig3 in
  Alcotest.(check bool) "loop i parallelizable" true
    (Parallelism.loop_parallelizable body "i")

let test_fig4_sequentialized () =
  (* after naive scalar replacement (Fig 4), b1 = b2 creates a scalar
     recurrence: the loop must be reported serial *)
  let src =
    {|
param int n;
double a[n];
double b[n];
#pragma acc kernels
{
  double b1 = 0.0;
  double b2 = 0.0;
  for (i = 1; i <= n - 2; i++) {
    b2 = b[i+1];
    a[i] = (b1 + b2) / 2.0;
    b1 = b2;
  }
}
|}
  in
  let body = body_of src in
  Alcotest.(check bool) "fig4 loop is serial" false
    (Parallelism.loop_parallelizable body "i")

let test_flow_dependence_distance () =
  (* a[i] = a[i-1] + 1: flow dep carried with distance 1 *)
  let src =
    {|
param int n;
double a[n];
#pragma acc kernels
{
  for (i = 1; i <= n - 1; i++) {
    a[i] = a[i-1] + 1.0;
  }
}
|}
  in
  let body = body_of src in
  let deps = Dependence.region_deps body in
  Alcotest.(check bool) "has flow dep" true
    (List.exists
       (fun d ->
         d.Dependence.d_kind = Dependence.Flow
         && d.Dependence.d_dist = [ Dependence.D 1 ])
       deps);
  Alcotest.(check bool) "loop serial" false (Parallelism.loop_parallelizable body "i")

let test_independent_strided () =
  (* a[2*i] and a[2*i+1] never collide: no dependence *)
  let src =
    {|
param int n;
double a[n];
#pragma acc kernels
{
  for (i = 0; i <= n/2 - 1; i++) {
    a[2*i] = a[2*i+1] + 1.0;
  }
}
|}
  in
  let body = body_of src in
  let deps = Dependence.region_deps body in
  Alcotest.(check int) "no deps" 0 (List.length deps);
  Alcotest.(check bool) "parallelizable" true (Parallelism.loop_parallelizable body "i")

let test_ziv_independent () =
  (* a[0] and a[1] are distinct cells *)
  let src =
    "param int n;\ndouble a[n];\n#pragma acc kernels\n{ for (i=0;i<n;i++) { a[0] = a[1] + 1.0; } }"
  in
  let deps = Dependence.region_deps (body_of src) in
  Alcotest.(check int) "ziv no dep" 0 (List.length deps)

let test_ziv_dependent () =
  (* a[0] written every iteration: output dep, loop serial *)
  let src =
    "param int n;\ndouble a[n];\n#pragma acc kernels\n{ for (i=0;i<n;i++) { a[0] = 1.0; a[0] = 2.0; } }"
  in
  let body = body_of src in
  let deps = Dependence.region_deps body in
  Alcotest.(check bool) "output dep exists" true
    (List.exists (fun d -> d.Dependence.d_kind = Dependence.Output) deps);
  Alcotest.(check bool) "serial" false (Parallelism.loop_parallelizable body "i")

let test_2d_distance_vector () =
  (* a[i][j] = a[i-1][j+2]: distance vector (1, -2) *)
  let src =
    {|
param int n;
double a[n][n];
#pragma acc kernels
{
  for (i = 1; i <= n - 1; i++) {
    for (j = 0; j <= n - 3; j++) {
      a[i][j] = a[i-1][j+2] + 1.0;
    }
  }
}
|}
  in
  let deps = Dependence.region_deps (body_of src) in
  Alcotest.(check bool) "distance (1,-2)" true
    (List.exists
       (fun d -> d.Dependence.d_dist = [ Dependence.D 1; Dependence.D (-2) ])
       deps)

let test_guarded_branches_independent () =
  (* writes on opposite branches of the same if cannot conflict *)
  let src =
    {|
param int n;
double a[n];
#pragma acc kernels
{
  for (i = 0; i <= n - 1; i++) {
    if (i % 2 == 0) {
      a[i] = 1.0;
    } else {
      a[i] = 2.0;
    }
  }
}
|}
  in
  let deps = Dependence.region_deps (body_of src) in
  Alcotest.(check int) "no deps across branches" 0 (List.length deps)

let test_reduction_loop_parallel () =
  let src =
    {|
param int n;
in double a[n];
out double r[n];
#pragma acc kernels
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= n - 1; i++) {
    sum += a[i];
  }
  r[0] = sum;
}
|}
  in
  let body = body_of src in
  (* with the reduction clause the loop has no disqualifying recurrence *)
  Alcotest.(check bool) "reduction loop parallel" true
    (Parallelism.loop_parallelizable body "i")

(* --- schedule resolution ------------------------------------------- *)

let test_schedule_resolution () =
  let src =
    {|
param int n;
double a[n][n];
in double b[n][n];
#pragma acc kernels
{
  for (i = 0; i <= n - 1; i++) {
    for (j = 0; j <= n - 1; j++) {
      a[i][j] = b[i][j] * 2.0;
    }
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let r = Schedule.resolve (List.hd prog.Safara_ir.Program.regions) in
  match r.Safara_ir.Region.body with
  | [ S.For li ] -> (
      Alcotest.(check bool) "outer promoted" true (S.is_parallel_sched li.S.sched);
      match li.S.body with
      | [ S.For lj ] ->
          Alcotest.(check bool) "inner promoted" true (S.is_parallel_sched lj.S.sched)
      | _ -> Alcotest.fail "inner loop missing")
  | _ -> Alcotest.fail "outer loop missing"

let test_schedule_parallel_construct_asserts () =
  (* the same dependence-carrying loop: kernels keeps it sequential,
     parallel promotes it because the user asserted independence *)
  let src kind =
    Printf.sprintf
      "param int n;\ndouble a[n];\n#pragma acc %s\n{ for (i = 1; i <= n - 1; i++) { a[i] = a[i-1] + 1.0; } }"
      kind
  in
  let sched kind =
    let prog = Safara_lang.Frontend.compile (src kind) in
    let r = Schedule.resolve (List.hd prog.Safara_ir.Program.regions) in
    match r.Safara_ir.Region.body with
    | [ S.For l ] -> l.S.sched
    | _ -> Alcotest.fail "loop missing"
  in
  Alcotest.(check bool) "kernels keeps it seq" true (sched "kernels" = S.Seq);
  Alcotest.(check bool) "parallel promotes it" true
    (S.is_parallel_sched (sched "parallel"))

let test_schedule_serial_stays_seq () =
  let src =
    {|
param int n;
double a[n];
#pragma acc kernels
{
  for (i = 1; i <= n - 1; i++) {
    a[i] = a[i-1] + 1.0;
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let r = Schedule.resolve (List.hd prog.Safara_ir.Program.regions) in
  match r.Safara_ir.Region.body with
  | [ S.For l ] -> Alcotest.(check bool) "stays seq" true (l.S.sched = S.Seq)
  | _ -> Alcotest.fail "loop missing"

(* --- mapping & coalescing ------------------------------------------ *)

let fig8_like =
  {|
param int nx;
param int ny;
param int nz;
param double h;
in double b[ny][nx];
double a[ny][nx];
#pragma acc kernels
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      a[j][i] = b[j][i] + b[i][j];
    }
  }
}
|}

let region_of src =
  let prog = Safara_lang.Frontend.compile src in
  (prog, Schedule.resolve (List.hd prog.Safara_ir.Program.regions))

let test_mapping_axes () =
  let _, r = region_of fig8_like in
  let m = Mapping.of_region r in
  Alcotest.(check (option string)) "x is inner loop" (Some "i") (Mapping.x_index m);
  let bx, by, bz = m.Mapping.block in
  Alcotest.(check (list int)) "block dims" [ 64; 2; 1 ] [ bx; by; bz ]

let test_coalescing_classes () =
  let prog, r = region_of fig8_like in
  let elem a = Safara_ir.Program.elem_type prog a in
  let classes = Coalescing.classify_in_region ~arch:Safara_gpu.Arch.kepler_k20xm ~elem r in
  let find name subs_str =
    List.find_opt
      (fun ((a, subs), _) ->
        a = name
        && String.concat ","
             (List.map (fun s -> Format.asprintf "%a" E.pp s) subs)
           = subs_str)
      classes
    |> Option.map snd
  in
  (* b[j][i]: i fastest, stride 1, f64 -> coalesced *)
  (match find "b" "j,i" with
  | Some M.Coalesced -> ()
  | Some a -> Alcotest.fail ("b[j][i] should be coalesced, got " ^ M.access_to_string a)
  | None -> Alcotest.fail "b[j][i] not classified");
  (* b[i][j]: i in the slow dimension -> fully scattered *)
  match find "b" "i,j" with
  | Some (M.Uncoalesced n) when n >= 16 -> ()
  | Some a -> Alcotest.fail ("b[i][j] should be scattered, got " ^ M.access_to_string a)
  | None -> Alcotest.fail "b[i][j] not classified"

let test_coalescing_invariant () =
  let src =
    {|
param int n;
in double c[n];
double a[n][n];
#pragma acc kernels
{
  #pragma acc loop gang
  for (j = 0; j <= n - 1; j++) {
    #pragma acc loop vector(128)
    for (i = 0; i <= n - 1; i++) {
      a[j][i] = c[j] * 2.0;
    }
  }
}
|}
  in
  let prog, r = region_of src in
  let elem a = Safara_ir.Program.elem_type prog a in
  let classes = Coalescing.classify_in_region ~arch:Safara_gpu.Arch.kepler_k20xm ~elem r in
  match List.find_opt (fun ((a, _), _) -> a = "c") classes with
  | Some (_, M.Invariant) -> ()
  | Some (_, a) -> Alcotest.fail ("c[j] should be invariant, got " ^ M.access_to_string a)
  | None -> Alcotest.fail "c[j] not classified"

let test_coalescing_strided () =
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n/2 - 1; i++) {
    a[i] = b[2*i];
  }
}
|}
  in
  let prog, r = region_of src in
  let elem a = Safara_ir.Program.elem_type prog a in
  let classes = Coalescing.classify_in_region ~arch:Safara_gpu.Arch.kepler_k20xm ~elem r in
  match List.find_opt (fun ((a, _), _) -> a = "b") classes with
  | Some (_, M.Uncoalesced n) ->
      Alcotest.(check bool) "stride-2 f64 needs >1 txn" true (n > 1 && n <= 32)
  | Some (_, a) ->
      Alcotest.fail ("b[2*i] should be uncoalesced, got " ^ M.access_to_string a)
  | None -> Alcotest.fail "b[2*i] not classified"

(* --- spaces --------------------------------------------------------- *)

let test_spaces () =
  let prog, r = region_of fig8_like in
  let spaces = Spaces.region_spaces ~arch:Safara_gpu.Arch.kepler_k20xm prog r in
  Alcotest.(check bool) "b read-only" true
    (List.assoc "b" spaces = M.Read_only);
  Alcotest.(check bool) "a global" true (List.assoc "a" spaces = M.Global)

let test_spaces_fermi_no_ro () =
  let prog, r = region_of fig8_like in
  let spaces = Spaces.region_spaces ~arch:Safara_gpu.Arch.fermi_like prog r in
  Alcotest.(check bool) "b global on fermi" true (List.assoc "b" spaces = M.Global)

(* --- reuse ---------------------------------------------------------- *)

let fig5 =
  {|
param int jsize;
param int isize;
double a[isize][jsize];
in double b[jsize][isize];
double c[jsize];
double d[jsize];
#pragma acc kernels
{
  #pragma acc loop gang vector(128)
  for (j = 1; j <= jsize - 1; j++) {
    c[j] = b[j][0] + b[j][1];
    d[j] = c[j] * b[j][0];
    #pragma acc loop seq
    for (i = 1; i <= isize - 2; i++) {
      a[i][j] = a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
|}

let reuse_candidates src =
  let prog, r = region_of src in
  Reuse.candidates ~arch:Safara_gpu.Arch.kepler_k20xm
    ~latency:Safara_gpu.Latency.kepler prog r

let test_fig5_candidates () =
  let cands = reuse_candidates fig5 in
  (* b[j][i-1], b[j][i+1] form an inter chain on i with span 2 *)
  let b_inter =
    List.find_opt
      (fun c ->
        c.Reuse.c_array = "b"
        && match c.Reuse.c_kind with Reuse.Inter { carrier = "i"; _ } -> true | _ -> false)
      cands
  in
  (match b_inter with
  | Some c -> (
      match c.Reuse.c_kind with
      | Reuse.Inter { span; _ } -> Alcotest.(check int) "b span" 2 span
      | _ -> assert false)
  | None -> Alcotest.fail "b inter-chain not found");
  (* b[j][0] appears twice in the outer body: intra candidate *)
  let b0_intra =
    List.exists
      (fun c -> c.Reuse.c_array = "b" && c.Reuse.c_kind = Reuse.Intra && c.Reuse.c_reads = 2)
      cands
  in
  Alcotest.(check bool) "b[j][0] intra" true b0_intra

let test_fig5_a_chain_exists_but_cheaper () =
  let cands = reuse_candidates fig5 in
  (* a's refs include a write -> rotating chain suppressed; but even the
     a reads are coalesced while b's are scattered, so any b candidate
     must outrank any a candidate *)
  let cost_of array =
    List.fold_left
      (fun acc c -> if c.Reuse.c_array = array then max acc c.Reuse.c_cost else acc)
      0 cands
  in
  Alcotest.(check bool) "b outranks a" true (cost_of "b" > cost_of "a")

let test_fig5_b_uncoalesced () =
  let cands = reuse_candidates fig5 in
  let b =
    List.find
      (fun c ->
        c.Reuse.c_array = "b"
        && match c.Reuse.c_kind with Reuse.Inter _ -> true | _ -> false)
      cands
  in
  match b.Reuse.c_access with
  | M.Uncoalesced _ -> ()
  | a -> Alcotest.fail ("b should be uncoalesced: " ^ M.access_to_string a)

let test_no_inter_on_parallel_loop () =
  (* fig 3: reuse across iterations of a parallel loop must NOT produce
     an inter candidate (paper §III.A.1) *)
  let cands = reuse_candidates fig3 in
  Alcotest.(check bool) "no inter candidates" true
    (List.for_all (fun c -> c.Reuse.c_kind = Reuse.Intra) cands)

let test_inter_on_seq_loop () =
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop seq
  for (i = 1; i <= n - 2; i++) {
    a[i] = (b[i] + b[i+1]) / 2.0;
  }
}
|}
  in
  let cands = reuse_candidates src in
  Alcotest.(check bool) "inter candidate on seq loop" true
    (List.exists
       (fun c ->
         match c.Reuse.c_kind with
         | Reuse.Inter { carrier = "i"; span = 1 } -> true
         | _ -> false)
       cands)

let test_intra_duplicates () =
  let src =
    {|
param int n;
in double b[n][n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(128)
  for (i = 1; i <= n - 2; i++) {
    a[i] = b[i][0] * b[i][0] + b[i][0];
  }
}
|}
  in
  let cands = reuse_candidates src in
  match List.find_opt (fun c -> c.Reuse.c_array = "b") cands with
  | Some c ->
      Alcotest.(check bool) "intra" true (c.Reuse.c_kind = Reuse.Intra);
      Alcotest.(check int) "three reads" 3 c.Reuse.c_reads;
      Alcotest.(check int) "saves two loads" 2 c.Reuse.c_loads_saved
  | None -> Alcotest.fail "duplicate b[i][0] not found"

let test_regs_needed_f64_chain () =
  let cands = reuse_candidates fig5 in
  let b =
    List.find
      (fun c ->
        c.Reuse.c_array = "b"
        && match c.Reuse.c_kind with Reuse.Inter _ -> true | _ -> false)
      cands
  in
  (* span 2 -> 3 rotating scalars, f64 -> 2 regs each = 6 *)
  Alcotest.(check int) "regs needed" 6 b.Reuse.c_regs_needed

let test_cost_ordering_respects_latency () =
  let cands = reuse_candidates fig5 in
  match cands with
  | first :: _ ->
      Alcotest.(check string) "most costly is b" "b" first.Reuse.c_array
  | [] -> Alcotest.fail "no candidates"

let suite =
  [
    Alcotest.test_case "affine simple" `Quick test_affine_simple;
    Alcotest.test_case "affine shifted" `Quick test_affine_shifted;
    Alcotest.test_case "affine multi-index" `Quick test_affine_multi_index;
    Alcotest.test_case "affine symbolic rest" `Quick test_affine_symbolic_rest;
    Alcotest.test_case "affine rest canonicalization" `Quick test_affine_rest_canonical;
    Alcotest.test_case "affine rejections" `Quick test_affine_rejects;
    Alcotest.test_case "affine distance" `Quick test_affine_distance;
    Alcotest.test_case "affine symbolic*index" `Quick test_affine_scaled_symbolic;
    Alcotest.test_case "fig3 input dependence" `Quick test_fig3_input_dependence;
    Alcotest.test_case "fig3 parallelizable" `Quick test_fig3_parallel;
    Alcotest.test_case "fig4 sequentialized by SR" `Quick test_fig4_sequentialized;
    Alcotest.test_case "flow dependence distance" `Quick test_flow_dependence_distance;
    Alcotest.test_case "strided independence" `Quick test_independent_strided;
    Alcotest.test_case "ZIV independent" `Quick test_ziv_independent;
    Alcotest.test_case "ZIV dependent" `Quick test_ziv_dependent;
    Alcotest.test_case "2D distance vector" `Quick test_2d_distance_vector;
    Alcotest.test_case "disjoint branches" `Quick test_guarded_branches_independent;
    Alcotest.test_case "reduction loop parallel" `Quick test_reduction_loop_parallel;
    Alcotest.test_case "schedule auto promotion" `Quick test_schedule_resolution;
    Alcotest.test_case "schedule serial stays seq" `Quick test_schedule_serial_stays_seq;
    Alcotest.test_case "parallel construct asserts independence" `Quick test_schedule_parallel_construct_asserts;
    Alcotest.test_case "mapping axes" `Quick test_mapping_axes;
    Alcotest.test_case "coalescing classes" `Quick test_coalescing_classes;
    Alcotest.test_case "coalescing invariant" `Quick test_coalescing_invariant;
    Alcotest.test_case "coalescing strided" `Quick test_coalescing_strided;
    Alcotest.test_case "memory spaces" `Quick test_spaces;
    Alcotest.test_case "spaces on fermi" `Quick test_spaces_fermi_no_ro;
    Alcotest.test_case "fig5 candidates" `Quick test_fig5_candidates;
    Alcotest.test_case "fig5 cost ranking" `Quick test_fig5_a_chain_exists_but_cheaper;
    Alcotest.test_case "fig5 b uncoalesced" `Quick test_fig5_b_uncoalesced;
    Alcotest.test_case "no inter on parallel loop" `Quick test_no_inter_on_parallel_loop;
    Alcotest.test_case "inter on seq loop" `Quick test_inter_on_seq_loop;
    Alcotest.test_case "intra duplicates" `Quick test_intra_duplicates;
    Alcotest.test_case "rotating regs for f64 chain" `Quick test_regs_needed_f64_chain;
    Alcotest.test_case "cost ordering" `Quick test_cost_ordering_respects_latency;
  ]
