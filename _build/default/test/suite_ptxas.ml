(* Tests for the assembler stand-in: CFG construction, liveness,
   linear-scan allocation (pair alignment, spilling) and the feedback
   report. *)

module I = Safara_vir.Instr
module V = Safara_vir.Vreg
module T = Safara_ir.Types
open Safara_ptxas

let arch = Safara_gpu.Arch.kepler_k20xm

let r32 rid = { V.rid; rty = T.I32 }
let r64 rid = { V.rid; rty = T.I64 }
let f64 rid = { V.rid; rty = T.F64 }
let pred rid = { V.rid; rty = T.Bool }

let straightline =
  [|
    I.Mov { dst = r32 0; src = I.Imm 1 };
    I.Mov { dst = r32 1; src = I.Imm 2 };
    I.Bin { op = I.Add; dst = r32 2; a = I.Reg (r32 0); b = I.Reg (r32 1) };
    I.Ret;
  |]

let test_cfg_single_block () =
  let cfg = Cfg.build straightline in
  Alcotest.(check int) "one block" 1 (Array.length cfg.Cfg.blocks)

let branchy =
  [|
    I.Mov { dst = r32 0; src = I.Imm 1 };
    I.Setp { cmp = I.Lt; dst = pred 1; a = I.Reg (r32 0); b = I.Imm 5 };
    I.Brc { pred = pred 1; if_true = false; target = "else" };
    I.Mov { dst = r32 2; src = I.Imm 10 };
    I.Bra "end";
    I.Label "else";
    I.Mov { dst = r32 2; src = I.Imm 20 };
    I.Label "end";
    I.Ret;
  |]

let test_cfg_diamond () =
  let cfg = Cfg.build branchy in
  Alcotest.(check int) "four blocks" 4 (Array.length cfg.Cfg.blocks);
  let b0 = cfg.Cfg.blocks.(0) in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] b0.Cfg.succs

let loopy =
  (* r0 = 0; loop: r0 += 1; if r0 < 10 goto loop; r1 = r0 *)
  [|
    I.Mov { dst = r32 0; src = I.Imm 0 };
    I.Label "loop";
    I.Bin { op = I.Add; dst = r32 0; a = I.Reg (r32 0); b = I.Imm 1 };
    I.Setp { cmp = I.Lt; dst = pred 1; a = I.Reg (r32 0); b = I.Imm 10 };
    I.Brc { pred = pred 1; if_true = true; target = "loop" };
    I.Mov { dst = r32 2; src = I.Reg (r32 0) };
    I.Ret;
  |]

let test_liveness_loop () =
  let cfg = Cfg.build loopy in
  let ivs = Liveness.intervals cfg in
  let iv0 = List.find (fun iv -> iv.Liveness.reg.V.rid = 0) ivs in
  (* r0 is live from its definition through the loop to the final use *)
  Alcotest.(check int) "r0 starts at def" 0 iv0.Liveness.i_start;
  Alcotest.(check bool) "r0 live until final use" true (iv0.Liveness.i_end >= 5)

let test_dead_def_has_point_interval () =
  let code = [| I.Mov { dst = r32 0; src = I.Imm 1 }; I.Ret |] in
  let ivs = Liveness.intervals (Cfg.build code) in
  let iv = List.find (fun iv -> iv.Liveness.reg.V.rid = 0) ivs in
  Alcotest.(check int) "point interval" iv.Liveness.i_start iv.Liveness.i_end

let test_allocation_reuses_registers () =
  (* two values with disjoint lifetimes share one register *)
  let code =
    [|
      I.Mov { dst = r32 0; src = I.Imm 1 };
      I.Bin { op = I.Add; dst = r32 1; a = I.Reg (r32 0); b = I.Imm 1 };
      (* r0 dead after this *)
      I.Mov { dst = r32 2; src = I.Imm 5 };
      I.Bin { op = I.Add; dst = r32 3; a = I.Reg (r32 2); b = I.Reg (r32 1) };
      I.Ret;
    |]
  in
  let cfg = Cfg.build code in
  let res = Linear_scan.allocate ~max_regs:255 cfg in
  Alcotest.(check bool) "at most 3 regs" true (res.Linear_scan.regs_used <= 3);
  (match Linear_scan.verify cfg res with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_pair_alignment () =
  let code =
    [|
      I.Mov { dst = r32 0; src = I.Imm 1 };
      I.Mov { dst = r64 1; src = I.Imm 2 };
      I.Bin { op = I.Add; dst = r64 2; a = I.Reg (r64 1); b = I.Reg (r32 0) };
      I.Ret;
    |]
  in
  let cfg = Cfg.build code in
  let res = Linear_scan.allocate ~max_regs:255 cfg in
  List.iter
    (fun (r, base) ->
      if V.width r = 2 then
        Alcotest.(check int) "aligned" 0 (base mod 2))
    res.Linear_scan.assignment;
  match Linear_scan.verify cfg res with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let many_live n =
  (* define n long-lived f64 values, then sum them *)
  let defs =
    List.init n (fun i -> I.Mov { dst = f64 i; src = I.FImm (float_of_int i) })
  in
  let sums =
    List.init (n - 1) (fun i ->
        I.Bin
          {
            op = I.Add;
            dst = f64 (n + i);
            a = I.Reg (if i = 0 then f64 0 else f64 (n + i - 1));
            b = I.Reg (f64 (i + 1));
          })
  in
  Array.of_list (defs @ sums @ [ I.Ret ])

let test_spilling_under_cap () =
  let code = many_live 20 in
  let cfg = Cfg.build code in
  (* 20 f64 = 40 units live at once; cap at 16 forces spills *)
  let res = Linear_scan.allocate ~max_regs:16 cfg in
  Alcotest.(check bool) "spills happened" true (res.Linear_scan.spilled <> []);
  Alcotest.(check bool) "cap respected" true (res.Linear_scan.regs_used <= 16)

let test_no_spill_when_fits () =
  let code = many_live 20 in
  let res = Linear_scan.allocate ~max_regs:255 (Cfg.build code) in
  Alcotest.(check (list string)) "no spills" []
    (List.map V.to_string res.Linear_scan.spilled)

let test_predicates_not_counted () =
  let code =
    [|
      I.Setp { cmp = I.Lt; dst = pred 0; a = I.Imm 1; b = I.Imm 2 };
      I.Brc { pred = pred 0; if_true = true; target = "end" };
      I.Label "end";
      I.Ret;
    |]
  in
  let res = Linear_scan.allocate ~max_regs:255 (Cfg.build code) in
  Alcotest.(check int) "no gprs" 0 res.Linear_scan.regs_used;
  Alcotest.(check int) "one predicate" 1 res.Linear_scan.pred_used

let test_assemble_spill_roundtrip () =
  (* assembling with a tiny cap inserts local-memory spill code that
     still computes the same result (checked via the interpreter) *)
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (i = 0; i <= n - 1; i++) {
    double t1 = b[i] * 1.5;
    double t2 = t1 + 2.0;
    double t3 = t1 * t2;
    double t4 = t3 - t1;
    double t5 = t4 * t2 + t3;
    a[i] = t1 + t2 + t3 + t4 + t5;
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let k = Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions) in
  let run kernel =
    let mem = Safara_sim.Memory.create () in
    Safara_sim.Memory.alloc_program mem ~env:[ ("n", 64) ] prog;
    let b = Safara_sim.Memory.float_data mem "b" in
    Array.iteri (fun i _ -> b.(i) <- float_of_int i *. 0.25) b;
    let env = { Safara_sim.Interp.scalars = [ ("n", Safara_sim.Value.I 64) ]; mem } in
    Safara_sim.Launch.run_functional ~prog ~env [ kernel ];
    Array.copy (Safara_sim.Memory.float_data mem "a")
  in
  let k_full, rep_full = Assemble.assemble ~arch k in
  let k_tight, rep_tight = Assemble.assemble ~max_regs:10 ~arch k in
  Alcotest.(check int) "full cap has no spills" 0 rep_full.Assemble.spill_bytes;
  Alcotest.(check bool) "tight cap spills" true (rep_tight.Assemble.spill_bytes > 0);
  Alcotest.(check bool) "tight cap respected" true (rep_tight.Assemble.regs_used <= 10);
  let a1 = run k_full and a2 = run k_tight in
  Alcotest.(check bool) "identical results" true (a1 = a2)

let test_pressure_lower_bound () =
  (* peak simultaneous liveness is a lower bound for any allocation *)
  let srcs =
    [ (Safara_suites.Registry.find "355.seismic").Safara_suites.Workload.source;
      (Safara_suites.Registry.find "SP").Safara_suites.Workload.source ]
  in
  List.iter
    (fun src ->
      let prog = Safara_lang.Frontend.compile src in
      let prog = Safara_analysis.Schedule.resolve_program prog in
      List.iter
        (fun r ->
          let k = Safara_vir.Codegen.compile_region ~arch prog r in
          let cfg = Cfg.build k.Safara_vir.Kernel.code in
          let res = Linear_scan.allocate ~max_regs:255 cfg in
          Alcotest.(check bool)
            (r.Safara_ir.Region.rname ^ " allocation >= pressure bound")
            true
            (res.Linear_scan.regs_used >= Pressure.max_pressure cfg))
        prog.Safara_ir.Program.regions)
    srcs

let test_report_fields () =
  let src =
    "param int n;\nin double b[n];\ndouble a[n];\n#pragma acc kernels name(k)\n{\n#pragma acc loop gang vector(64)\nfor (i=0;i<n;i++) { a[i] = b[i]; } }"
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let k = Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions) in
  let _, rep = Assemble.assemble ~arch k in
  Alcotest.(check string) "name" "k" rep.Assemble.kernel_name;
  Alcotest.(check bool) "positive regs" true (rep.Assemble.regs_used > 0);
  Alcotest.(check bool) "instr count" true (rep.Assemble.instructions > 10)

let suite =
  [
    Alcotest.test_case "cfg single block" `Quick test_cfg_single_block;
    Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "liveness across loop" `Quick test_liveness_loop;
    Alcotest.test_case "dead def interval" `Quick test_dead_def_has_point_interval;
    Alcotest.test_case "allocation reuses registers" `Quick test_allocation_reuses_registers;
    Alcotest.test_case "64-bit pair alignment" `Quick test_pair_alignment;
    Alcotest.test_case "spilling under cap" `Quick test_spilling_under_cap;
    Alcotest.test_case "no spill when fits" `Quick test_no_spill_when_fits;
    Alcotest.test_case "predicates not counted" `Quick test_predicates_not_counted;
    Alcotest.test_case "assemble spill roundtrip" `Quick test_assemble_spill_roundtrip;
    Alcotest.test_case "pressure lower bound" `Quick test_pressure_lower_bound;
    Alcotest.test_case "report fields" `Quick test_report_fields;
  ]
