(* Tests for the later-added machinery: the peephole optimizer, offset
   strength reduction, register promotion, write-forward chains, the
   source emitter, and timing-model details (cache tiers, partial
   waves). *)

module I = Safara_vir.Instr
module V = Safara_vir.Vreg
module T = Safara_ir.Types
module E = Safara_ir.Expr

let arch = Safara_gpu.Arch.kepler_k20xm
let latency = Safara_gpu.Latency.kepler

let r32 rid = { V.rid; rty = T.I32 }
let f64 rid = { V.rid; rty = T.F64 }

(* --- peephole -------------------------------------------------------- *)

let test_peephole_constant_folding () =
  let code =
    [|
      I.Bin { op = I.Add; dst = r32 0; a = I.Imm 2; b = I.Imm 3 };
      I.St
        {
          src = I.Reg (r32 0);
          addr = { V.rid = 1; rty = T.I64 };
          mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = Safara_gpu.Memspace.Coalesced; m_bytes = 4 };
          note = "x";
        };
      I.Ret;
    |]
  in
  let out = Safara_vir.Peephole.optimize code in
  (* folding + copy propagation + DCE: the constant reaches the store *)
  Alcotest.(check bool) "constant reaches the store" true
    (Array.exists (function I.St { src = I.Imm 5; _ } -> true | _ -> false) out);
  Alcotest.(check bool) "the add is gone" true
    (not (Array.exists (function I.Bin _ -> true | _ -> false) out))

let test_peephole_identities () =
  let mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = Safara_gpu.Memspace.Coalesced; m_bytes = 4 } in
  let code =
    [|
      I.Mov { dst = r32 0; src = I.Imm 7 };
      I.Bin { op = I.Add; dst = r32 1; a = I.Reg (r32 0); b = I.Imm 0 };
      I.Bin { op = I.Mul; dst = r32 2; a = I.Reg (r32 1); b = I.Imm 1 };
      I.St { src = I.Reg (r32 2); addr = { V.rid = 3; rty = T.I64 }; mem; note = "x" };
      I.Ret;
    |]
  in
  let out = Safara_vir.Peephole.optimize code in
  (* x+0 and x*1 collapse; copy propagation then forwards the constant *)
  Alcotest.(check bool) "store sees the constant" true
    (Array.exists (function I.St { src = I.Imm 7; _ } -> true | _ -> false) out)

let test_peephole_dce () =
  let code =
    [|
      I.Mov { dst = f64 0; src = I.FImm 1.0 };
      (* dead *)
      I.Mov { dst = f64 1; src = I.FImm 2.0 };
      I.St
        {
          src = I.Reg (f64 1);
          addr = { V.rid = 2; rty = T.I64 };
          mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = Safara_gpu.Memspace.Coalesced; m_bytes = 8 };
          note = "x";
        };
      I.Ret;
    |]
  in
  let out = Safara_vir.Peephole.optimize code in
  Alcotest.(check bool) "dead def removed" true
    (not (Array.exists (function I.Mov { dst; _ } -> dst.V.rid = 0 | _ -> false) out))

let test_peephole_keeps_control_flow () =
  (* values must not propagate across labels (merge points) *)
  let pred = { V.rid = 9; rty = T.Bool } in
  let code =
    [|
      I.Mov { dst = r32 0; src = I.Imm 1 };
      I.Setp { cmp = I.Lt; dst = pred; a = I.Reg (r32 0); b = I.Imm 5 };
      I.Brc { pred; if_true = false; target = "other" };
      I.Mov { dst = r32 1; src = I.Imm 10 };
      I.Bra "join";
      I.Label "other";
      I.Mov { dst = r32 1; src = I.Imm 20 };
      I.Label "join";
      I.Bin { op = I.Add; dst = r32 2; a = I.Reg (r32 1); b = I.Imm 0 };
      I.St
        {
          src = I.Reg (r32 2);
          addr = { V.rid = 3; rty = T.I64 };
          mem = { I.m_space = Safara_gpu.Memspace.Global; m_access = Safara_gpu.Memspace.Coalesced; m_bytes = 4 };
          note = "x";
        };
      I.Ret;
    |]
  in
  let out = Safara_vir.Peephole.optimize code in
  (* the store must NOT have been constant-folded to 10 or 20 *)
  Alcotest.(check bool) "no cross-block propagation" true
    (not
       (Array.exists
          (function I.St { src = I.Imm (10 | 20); _ } -> true | _ -> false)
          out))

(* --- offset strength reduction -------------------------------------- *)

let compile_kernel src =
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions)

let test_strength_reduction_neighbors () =
  (* a[k] and a[k-1] on a dynamic 3D array: the second address must be
     derived (constant instruction count), not a fresh Horner chain *)
  let src offsets =
    Printf.sprintf
      {|
param int nx;
param int ny;
param int nz;
in double a[nz][ny][nx];
double o[nz][ny][nx];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= nx - 1; i++) {
    #pragma acc loop seq
    for (kk = 2; kk <= nz - 2; kk++) {
      o[kk][0][i] = %s;
    }
  }
}
|}
      offsets
  in
  let one = compile_kernel (src "a[kk][0][i]") in
  let two = compile_kernel (src "a[kk][0][i] + a[kk-1][0][i]") in
  let three = compile_kernel (src "a[kk][0][i] + a[kk-1][0][i] + a[kk+1][0][i]") in
  let n1 = Array.length one.Safara_vir.Kernel.code in
  let n2 = Array.length two.Safara_vir.Kernel.code in
  let n3 = Array.length three.Safara_vir.Kernel.code in
  (* each extra neighbor costs only a few instructions (derive + load +
     add), far less than a full offset chain *)
  Alcotest.(check bool) "second ref cheap" true (n2 - n1 <= 6);
  Alcotest.(check bool) "third ref cheap" true (n3 - n2 <= 5)

let test_strength_reduction_correct () =
  (* semantics: neighbor-derived addresses must load the right cells *)
  let src =
    {|
param int n;
in double a[n][n];
double o[n][n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (i = 0; i <= n - 1; i++) {
    #pragma acc loop seq
    for (kk = 1; kk <= n - 2; kk++) {
      o[kk][i] = a[kk][i] * 2.0 + a[kk-1][i] + a[kk+1][i];
    }
  }
}
|}
  in
  let n = 16 in
  let prog = Safara_lang.Frontend.compile src in
  let c = Safara_core.Compiler.compile Safara_core.Compiler.Base prog in
  let env = Safara_core.Compiler.make_env c ~scalars:[ ("n", Safara_sim.Value.I n) ] in
  let a = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "a" in
  Array.iteri (fun i _ -> a.(i) <- float_of_int i) a;
  Safara_core.Compiler.run_functional c env;
  let o = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "o" in
  let idx k i = (k * n) + i in
  let expect k i =
    (float_of_int (idx k i) *. 2.0)
    +. float_of_int (idx (k - 1) i)
    +. float_of_int (idx (k + 1) i)
  in
  Alcotest.(check (float 0.)) "o[3][5]" (expect 3 5) o.(idx 3 5);
  Alcotest.(check (float 0.)) "o[14][0]" (expect 14 0) o.(idx 14 0)

(* --- register promotion & write chains ------------------------------- *)

let test_promotion_candidate_found () =
  let src =
    {|
param int n;
param int m;
in double a[n][m];
double q[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= n - 1; i++) {
    q[i] = 0.0;
    #pragma acc loop seq
    for (kk = 0; kk <= m - 1; kk++) {
      q[i] = q[i] + a[i][kk];
    }
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let r = List.hd prog.Safara_ir.Program.regions in
  let cands = Safara_analysis.Reuse.candidates ~arch ~latency prog r in
  Alcotest.(check bool) "q promoted" true
    (List.exists
       (fun c ->
         c.Safara_analysis.Reuse.c_array = "q"
         &&
         match c.Safara_analysis.Reuse.c_kind with
         | Safara_analysis.Reuse.Promote { carrier = "kk"; has_write = true } -> true
         | _ -> false)
       cands)

let test_promotion_removes_inner_traffic () =
  let src =
    {|
param int n;
param int m;
in double a[n][m];
double q[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= n - 1; i++) {
    q[i] = 0.0;
    #pragma acc loop seq
    for (kk = 0; kk <= m - 1; kk++) {
      q[i] = q[i] + a[i][kk];
    }
  }
}
|}
  in
  let count_q profile =
    let c = Safara_core.Compiler.compile_src profile src in
    let k, _ = List.hd c.Safara_core.Compiler.c_kernels in
    Safara_vir.Kernel.count_instr k ~f:(function
      | I.Ld { note = "q"; _ } | I.St { note = "q"; _ } -> true
      | _ -> false)
  in
  let base = count_q Safara_core.Compiler.Base in
  let saf = count_q Safara_core.Compiler.Safara_only in
  (* base: zero-store + per-iteration load and store; promoted: the
     zero-store, one preload, one store-back *)
  Alcotest.(check bool) "q traffic reduced" true (saf <= 3 && base >= 3)

let test_promotion_blocked_by_alias () =
  (* a write to q[i+1] inside the loop may alias q[i] across threads?
     no — but q[i-1] read + q[i] write in the same loop must block
     promoting either tuple with writes *)
  let src =
    {|
param int n;
param int m;
in double a[n][m];
double q[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(64)
  for (i = 1; i <= n - 1; i++) {
    #pragma acc loop seq
    for (kk = 0; kk <= m - 1; kk++) {
      q[i] = q[i] + a[i][kk] * q[i-1];
    }
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let r = List.hd prog.Safara_ir.Program.regions in
  let cands = Safara_analysis.Reuse.candidates ~arch ~latency prog r in
  (* q[i] rw cannot promote because q[i-1] is another (read) ref to the
     array in the subtree that is not provably independent across the
     outer parallel loop... our rule: same-tuple refs must be members
     and other tuples independent; q[i-1] vs q[i] differ by 1 in the
     parallel dim -> test_pair gives distance on i, carried only by i;
     zero-distance alias impossible, so promotion of q[i] IS legal
     here. What must NOT happen is promotion of the read q[i-1]
     (written elsewhere in the subtree with possible overlap). *)
  List.iter
    (fun c ->
      match c.Safara_analysis.Reuse.c_kind with
      | Safara_analysis.Reuse.Promote { has_write = false; _ }
        when c.Safara_analysis.Reuse.c_array = "q" ->
          (* read-only promotion of q[i-1] would be unsound *)
          Alcotest.fail "read-only promotion of q[i-1] must be blocked"
      | _ -> ())
    cands;
  (* and whatever is selected must preserve semantics *)
  let run profile =
    let c = Safara_core.Compiler.compile_src profile src in
    let env =
      Safara_core.Compiler.make_env c
        ~scalars:[ ("n", Safara_sim.Value.I 20); ("m", Safara_sim.Value.I 6) ]
    in
    let a = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "a" in
    Array.iteri (fun i _ -> a.(i) <- 0.001 *. float_of_int i) a;
    let q = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "q" in
    Array.iteri (fun i _ -> q.(i) <- 1.0) q;
    Safara_core.Compiler.run_functional c env;
    Array.copy (Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "q")
  in
  Alcotest.(check bool) "semantics preserved" true
    (run Safara_core.Compiler.Base = run Safara_core.Compiler.Safara_only)

let test_write_chain_forwarding () =
  let src =
    {|
param int n;
param int m;
in double c[n][m];
double w[n][m];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(64)
  for (j = 0; j <= n - 1; j++) {
    #pragma acc loop seq
    for (i = 1; i <= m - 1; i++) {
      w[j][i] = w[j][i-1] * 0.5 + c[j][i];
    }
  }
}
|}
  in
  let count_w_loads profile =
    let c = Safara_core.Compiler.compile_src profile src in
    let k, _ = List.hd c.Safara_core.Compiler.c_kernels in
    Safara_vir.Kernel.count_instr k ~f:(function
      | I.Ld { note = "w"; _ } -> true
      | _ -> false)
  in
  (* base loads w[j][i-1] every iteration; the forward chain keeps only
     the initializing load outside the loop *)
  Alcotest.(check int) "base has a w load" 1 (count_w_loads Safara_core.Compiler.Base);
  Alcotest.(check int) "forwarded w load stays (init only)" 1
    (count_w_loads Safara_core.Compiler.Safara_only);
  (* distinguish: in the SAFARA version the load must live outside the
     loop; cheap proxy: the store count is unchanged and semantics agree
     (covered by the workload suite); here check the rotation scalar
     appeared *)
  let c = Safara_core.Compiler.compile_src Safara_core.Compiler.Safara_only src in
  let r = List.hd c.Safara_core.Compiler.c_prog.Safara_ir.Program.regions in
  let has_sr_local = ref false in
  Safara_ir.Stmt.iter
    (fun s ->
      match s with
      | Safara_ir.Stmt.Local (v, _)
        when String.length v.E.vname >= 4 && String.sub v.E.vname 0 4 = "__sr" ->
          has_sr_local := true
      | _ -> ())
    r.Safara_ir.Region.body;
  Alcotest.(check bool) "rotating scalar introduced" true !has_sr_local

(* --- dynamic counters ------------------------------------------------ *)

let test_dynamic_loads_reduced () =
  let src =
    {|
param int jsize;
param int isize;
double a[isize][jsize];
in double b[jsize][isize];
double c[jsize];
#pragma acc kernels name(fig5)
{
  #pragma acc loop gang vector(32)
  for (j = 1; j <= jsize - 2; j++) {
    c[j] = b[j][0] + b[j][1];
    #pragma acc loop seq
    for (i = 1; i <= isize - 2; i++) {
      a[i][j] = a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
|}
  in
  let dynamic profile =
    let c = Safara_core.Compiler.compile_src profile src in
    let env =
      Safara_core.Compiler.make_env c
        ~scalars:[ ("jsize", Safara_sim.Value.I 24); ("isize", Safara_sim.Value.I 16) ]
    in
    let counters = Safara_sim.Interp.fresh_counters () in
    List.iter
      (fun (k, _) ->
        let grid = Safara_sim.Launch.grid_of ~env:env.Safara_sim.Interp.scalars k in
        Safara_sim.Interp.run_kernel ~counters ~prog:c.Safara_core.Compiler.c_prog
          ~env ~grid k)
      c.Safara_core.Compiler.c_kernels;
    counters
  in
  let base = dynamic Safara_core.Compiler.Base in
  let saf = dynamic Safara_core.Compiler.Safara_only in
  Alcotest.(check bool) "fewer dynamic loads" true
    (saf.Safara_sim.Interp.c_loads < base.Safara_sim.Interp.c_loads);
  Alcotest.(check int) "no spill traffic" 0 saf.Safara_sim.Interp.c_spill_ops;
  Alcotest.(check bool) "stores unchanged" true
    (saf.Safara_sim.Interp.c_stores = base.Safara_sim.Interp.c_stores)

(* --- emitter --------------------------------------------------------- *)

let test_emit_parses_back () =
  let w = Safara_suites.Registry.find "356.sp" in
  let prog = Safara_lang.Frontend.compile w.Safara_suites.Workload.source in
  let emitted = Safara_lang.Emit.program prog in
  match Safara_lang.Frontend.compile emitted with
  | _ -> ()
  | exception e -> Alcotest.fail ("emitted source does not parse: " ^ Printexc.to_string e)

let test_emit_float_literals () =
  Alcotest.(check string) "whole float keeps a point" "2.0"
    (Safara_lang.Emit.expr_to_source (E.float 2.0));
  let e = Safara_lang.Emit.expr_to_source (E.float 0.30000000000000004) in
  Alcotest.(check bool) "precise roundtrip text" true (float_of_string e = 0.30000000000000004)

(* --- timing details --------------------------------------------------- *)

let test_cache_tiers () =
  (* re-touching the same segment must be cheaper than streaming *)
  let streaming =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n - 1; i++) {
    a[i] = b[i];
  }
}
|}
  in
  let rereading =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n - 1; i++) {
    a[i] = b[0] + b[1];
  }
}
|}
  in
  let cycles src =
    let prog = Safara_lang.Frontend.compile src in
    let prog = Safara_analysis.Schedule.resolve_program prog in
    let k = Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions) in
    let mem = Safara_sim.Memory.create () in
    Safara_sim.Memory.alloc_program mem ~env:[ ("n", 65536) ] prog;
    let env = { Safara_sim.Interp.scalars = [ ("n", Safara_sim.Value.I 65536) ]; mem } in
    let st =
      Safara_sim.Timing.simulate_resident_set ~arch ~latency ~prog ~env
        ~grid:(512, 1, 1) ~blocks_per_sm:8 k
    in
    st.Safara_sim.Timing.cycles
  in
  Alcotest.(check bool) "broadcast re-reads beat streaming" true
    (cycles rereading < cycles streaming)

let test_partial_wave_occupancy_irrelevant () =
  (* with fewer blocks than the GPU can hold, register counts should
     barely matter: effective residency is grid-bound *)
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n - 1; i++) {
    a[i] = b[i] * 2.0;
  }
}
|}
  in
  let time regs =
    let prog = Safara_lang.Frontend.compile src in
    let c = Safara_core.Compiler.compile Safara_core.Compiler.Base prog in
    let k, report = List.hd c.Safara_core.Compiler.c_kernels in
    let report = { report with Safara_ptxas.Assemble.regs_used = regs } in
    let env =
      Safara_core.Compiler.make_env c ~scalars:[ ("n", Safara_sim.Value.I 1024) ]
    in
    (Safara_sim.Launch.time_kernel ~arch ~latency ~prog:c.Safara_core.Compiler.c_prog
       ~env ~report k)
      .Safara_sim.Launch.kt_ms
  in
  (* 1024 threads = 8 blocks << 14 SMs: occupancy limits are slack *)
  Alcotest.(check (float 1e-9)) "8-block grid insensitive to registers"
    (time 32) (time 200)

let suite =
  [
    Alcotest.test_case "peephole constant folding" `Quick test_peephole_constant_folding;
    Alcotest.test_case "peephole identities" `Quick test_peephole_identities;
    Alcotest.test_case "peephole dead code" `Quick test_peephole_dce;
    Alcotest.test_case "peephole respects control flow" `Quick test_peephole_keeps_control_flow;
    Alcotest.test_case "strength reduction: neighbors cheap" `Quick test_strength_reduction_neighbors;
    Alcotest.test_case "strength reduction: correct" `Quick test_strength_reduction_correct;
    Alcotest.test_case "promotion candidate found" `Quick test_promotion_candidate_found;
    Alcotest.test_case "promotion removes inner traffic" `Quick test_promotion_removes_inner_traffic;
    Alcotest.test_case "promotion alias safety" `Quick test_promotion_blocked_by_alias;
    Alcotest.test_case "write-chain forwarding" `Quick test_write_chain_forwarding;
    Alcotest.test_case "dynamic loads reduced" `Quick test_dynamic_loads_reduced;
    Alcotest.test_case "emit parses back" `Quick test_emit_parses_back;
    Alcotest.test_case "emit float literals" `Quick test_emit_float_literals;
    Alcotest.test_case "cache tiers reward reuse" `Quick test_cache_tiers;
    Alcotest.test_case "partial waves ignore registers" `Quick test_partial_wave_occupancy_irrelevant;
  ]
