(* Code-generation tests: kernel structure, addressing (dope vectors,
   dim/small), including the paper's §IV.A offset-temporary example. *)

module I = Safara_vir.Instr
module K = Safara_vir.Kernel
let arch = Safara_gpu.Arch.kepler_k20xm

let compile_first src =
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  (prog, Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions))

let fig8 ~small ~dim =
  Printf.sprintf
    {|
param int nx;
param int ny;
param int nz;
param double h;
double vz_1[nz][ny][nx];
double vz_2[nz][ny][nx];
double vz_3[nz][ny][nx];
out double value_dz[nz][ny][nx];
#pragma acc kernels name(hot1) %s %s
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        value_dz[k][j][i] = (vz_1[k][j][i] - vz_1[k-1][j][i]) / h
                          + (vz_2[k][j][i] - vz_2[k-1][j][i]) / h
                          + (vz_3[k][j][i] - vz_3[k-1][j][i]) / h;
      }
    }
  }
}
|}
    (if dim then "dim([nz][ny][nx](vz_1, vz_2, vz_3))" else "")
    (if small then "small(vz_1, vz_2, vz_3, value_dz)" else "")

let count code p = Array.fold_left (fun n i -> if p i then n + 1 else n) 0 code

let test_block_geometry () =
  let _, k = compile_first (fig8 ~small:false ~dim:false) in
  Alcotest.(check (list int)) "block" [ 64; 2; 1 ]
    (let x, y, z = k.K.block in
     [ x; y; z ])

let test_axes () =
  let _, k = compile_first (fig8 ~small:false ~dim:false) in
  Alcotest.(check int) "two mapped axes" 2 (List.length k.K.axes);
  let names = List.map (fun a -> a.K.ax_index) k.K.axes in
  Alcotest.(check bool) "i and j mapped" true
    (List.mem "i" names && List.mem "j" names)

let test_dope_params_per_array_without_dim () =
  (* each of the four 3D dynamic arrays contributes two extent params *)
  let _, k = compile_first (fig8 ~small:false ~dim:false) in
  let dope =
    List.filter (fun n -> Str_helpers.contains n ".len") (K.param_names k)
  in
  Alcotest.(check int) "8 dope params" 8 (List.length dope)

let test_dope_params_shared_with_dim () =
  (* the three vz arrays share one descriptor; value_dz keeps its own *)
  let _, k = compile_first (fig8 ~small:false ~dim:true) in
  let dope =
    List.filter (fun n -> Str_helpers.contains n ".len") (K.param_names k)
  in
  Alcotest.(check int) "4 dope params" 4 (List.length dope)

let test_small_reduces_cvt () =
  (* 64-bit offsets convert each 32-bit subscript; small mode keeps one
     widening conversion per address *)
  let _, k64 = compile_first (fig8 ~small:false ~dim:false) in
  let _, k32 = compile_first (fig8 ~small:true ~dim:false) in
  let cvts k = count k.K.code (function I.Cvt _ -> true | _ -> false) in
  Alcotest.(check bool) "fewer cvts with small" true (cvts k32 < cvts k64)

let test_dim_shares_offsets () =
  let _, k = compile_first (fig8 ~small:false ~dim:false) in
  let _, kd = compile_first (fig8 ~small:false ~dim:true) in
  Alcotest.(check bool) "fewer instructions with dim" true
    (Array.length kd.K.code < Array.length k.K.code)

let regs src =
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let k = Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions) in
  let _, r = Safara_ptxas.Assemble.assemble ~arch k in
  r.Safara_ptxas.Assemble.regs_used

let test_register_ordering_table1 () =
  (* the Table I ordering: base > +small > small+dim *)
  let base = regs (fig8 ~small:false ~dim:false) in
  let small = regs (fig8 ~small:true ~dim:false) in
  let both = regs (fig8 ~small:true ~dim:true) in
  Alcotest.(check bool) "small saves" true (small < base);
  Alcotest.(check bool) "dim saves more" true (both < small)

let test_static_array_auto_small () =
  (* a static array under 4 GB uses 32-bit offsets without any clause:
     same register count as with an explicit small clause *)
  let src clause =
    Printf.sprintf
      {|
in double b[64][64];
double a[64][64];
#pragma acc kernels name(k) %s
{
  #pragma acc loop gang vector(64)
  for (i = 1; i <= 62; i++) {
    #pragma acc loop seq
    for (j = 1; j <= 62; j++) {
      a[i][j] = b[i][j] * 2.0;
    }
  }
}
|}
      clause
  in
  Alcotest.(check int) "auto-small static" (regs (src "small(a, b)")) (regs (src ""))

let test_memory_annotations () =
  let src =
    {|
param int n;
in double b[n][n];
double a[n][n];
#pragma acc kernels
{
  #pragma acc loop gang
  for (j = 0; j <= n - 1; j++) {
    #pragma acc loop vector(128)
    for (i = 0; i <= n - 1; i++) {
      a[j][i] = b[i][j];
    }
  }
}
|}
  in
  let _, k = compile_first src in
  let found_ro_scattered = ref false and found_global_coalesced = ref false in
  Array.iter
    (function
      | I.Ld { mem; note = "b"; _ } ->
          if
            mem.I.m_space = Safara_gpu.Memspace.Read_only
            && match mem.I.m_access with Safara_gpu.Memspace.Uncoalesced _ -> true | _ -> false
          then found_ro_scattered := true
      | I.St { mem; note = "a"; _ } ->
          if
            mem.I.m_space = Safara_gpu.Memspace.Global
            && mem.I.m_access = Safara_gpu.Memspace.Coalesced
          then found_global_coalesced := true
      | _ -> ())
    k.K.code;
  Alcotest.(check bool) "b is read-only + scattered" true !found_ro_scattered;
  Alcotest.(check bool) "a is global + coalesced" true !found_global_coalesced

let test_reduction_atomic () =
  let src =
    {|
param int n;
in double x[n];
double r[1];
#pragma acc kernels name(dot)
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= n - 1; i++) {
    sum += x[i] * x[i];
  }
  r[0] = sum;
}
|}
  in
  let _, k = compile_first src in
  Alcotest.(check int) "one atomic" 1
    (count k.K.code (function I.Atom _ -> true | _ -> false));
  (* the scalar store of sum must have been consumed by the pattern *)
  Alcotest.(check int) "no plain store to r" 0
    (count k.K.code (function I.St { note = "r"; _ } -> true | _ -> false))

let test_reduction_without_store_rejected () =
  let src =
    {|
param int n;
in double x[n];
double r[1];
#pragma acc kernels
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= n - 1; i++) {
    sum += x[i];
  }
  r[0] = sum + 1.0;
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  match
    Safara_vir.Codegen.compile_region ~arch prog (List.hd prog.Safara_ir.Program.regions)
  with
  | exception Safara_vir.Codegen.Error _ -> ()
  | _ -> Alcotest.fail "unsupported reduction pattern must be rejected"

let test_offset_cache_invalidation () =
  (* reassigning a scalar used in a subscript must force offset
     recomputation: compile and check there are two address adds for m *)
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(32)
  for (i = 1; i <= n - 2; i++) {
    int m = i;
    a[m] = b[m];
    m = i - 1;
    a[m] = b[m] + 1.0;
  }
}
|}
  in
  let prog, k = compile_first src in
  ignore prog;
  (* four distinct addresses: a[m] b[m] twice each with different m *)
  let stores = count k.K.code (function I.St _ -> true | _ -> false) in
  Alcotest.(check int) "both stores present" 2 stores;
  (* correctness is covered by the interpreter suite; here we just
     check the cache produced separate address computations *)
  let adds_to_base =
    count k.K.code (function
      | I.Bin { op = I.Add; a = I.Reg r; _ } when Safara_ir.Types.is_64bit r.Safara_vir.Vreg.rty -> true
      | _ -> false)
  in
  Alcotest.(check bool) "at least 4 address adds" true (adds_to_base >= 4)

let test_paper_iv_a_offset_scalars () =
  (* §IV.A: three same-shaped 3D arrays need 15 offset scalars without
     dim (5 per array: 2 extents as 64-bit pairs + offset math) and a
     shared computation with dim. We check the proxy: the number of
     dope-extent loads drops from 6 (3 arrays × 2 extents) to 2. *)
  let src dim =
    Printf.sprintf
      {|
param int nx;
param int ny;
param int nz;
double u[nz][ny][nx];
double v[nz][ny][nx];
double w[nz][ny][nx];
out double o[nz][ny][nx];
#pragma acc kernels name(k) %s
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= nx - 1; i++) {
    #pragma acc loop seq
    for (kk = 1; kk <= nz - 1; kk++) {
      o[kk][0][i] = u[kk][0][i] + v[kk][0][i] + w[kk][0][i];
    }
  }
}
|}
      (if dim then "dim([nz][ny][nx](u, v, w, o))" else "")
  in
  let dope_loads k =
    count k.K.code (function
      | I.Ldp { param; _ } -> Str_helpers.contains param ".len"
      | _ -> false)
  in
  let _, k_plain = compile_first (src false) in
  let _, k_dim = compile_first (src true) in
  Alcotest.(check int) "8 extent loads without dim" 8 (dope_loads k_plain);
  Alcotest.(check int) "2 extent loads with dim" 2 (dope_loads k_dim)

let suite =
  [
    Alcotest.test_case "block geometry" `Quick test_block_geometry;
    Alcotest.test_case "grid axes" `Quick test_axes;
    Alcotest.test_case "dope params without dim" `Quick test_dope_params_per_array_without_dim;
    Alcotest.test_case "dope params with dim" `Quick test_dope_params_shared_with_dim;
    Alcotest.test_case "small reduces conversions" `Quick test_small_reduces_cvt;
    Alcotest.test_case "dim shares offsets" `Quick test_dim_shares_offsets;
    Alcotest.test_case "table-1 register ordering" `Quick test_register_ordering_table1;
    Alcotest.test_case "static arrays auto-small" `Quick test_static_array_auto_small;
    Alcotest.test_case "memory annotations" `Quick test_memory_annotations;
    Alcotest.test_case "reduction lowers to atomic" `Quick test_reduction_atomic;
    Alcotest.test_case "bad reduction rejected" `Quick test_reduction_without_store_rejected;
    Alcotest.test_case "offset cache invalidation" `Quick test_offset_cache_invalidation;
    Alcotest.test_case "paper §IV.A dope loads" `Quick test_paper_iv_a_offset_scalars;
  ]
