(* Direct tests of the IR layer: types, dims, expressions, statements,
   array metadata, regions, and structural validation. *)

open Safara_ir
module E = Expr
module S = Stmt

let test_types_sizes () =
  Alcotest.(check int) "f64 bytes" 8 (Types.size_bytes Types.F64);
  Alcotest.(check int) "i32 bytes" 4 (Types.size_bytes Types.I32);
  Alcotest.(check int) "f64 regs" 2 (Types.registers Types.F64);
  Alcotest.(check int) "f32 regs" 1 (Types.registers Types.F32);
  Alcotest.(check bool) "i64 is 64-bit" true (Types.is_64bit Types.I64);
  Alcotest.(check bool) "bool not float" false (Types.is_float Types.Bool)

let test_types_join () =
  Alcotest.(check bool) "i32+f32" true (Types.join Types.I32 Types.F32 = Types.F32);
  Alcotest.(check bool) "i64+f32 widens to f64" true
    (Types.join Types.I64 Types.F32 = Types.F64);
  Alcotest.(check bool) "i32+i64" true (Types.join Types.I32 Types.I64 = Types.I64);
  Alcotest.(check bool) "f64 absorbs" true (Types.join Types.F64 Types.I32 = Types.F64)

let test_dim_static () =
  Alcotest.(check bool) "const static" true (Dim.is_static (Dim.const 64));
  Alcotest.(check bool) "sym dynamic" false (Dim.is_static (Dim.dyn "n"));
  Alcotest.(check bool) "equal consts" true (Dim.equal (Dim.const 8) (Dim.const 8));
  Alcotest.(check bool) "const vs sym" false (Dim.equal (Dim.const 8) (Dim.dyn "n"));
  Alcotest.(check bool) "same sym" true (Dim.equal (Dim.dyn "n") (Dim.dyn "n"))

let test_array_info () =
  let a = Array_info.make "a" Types.F64 [ Dim.dyn "n"; Dim.const 32 ] in
  Alcotest.(check int) "rank" 2 (Array_info.rank a);
  Alcotest.(check bool) "not static" false (Array_info.is_static a);
  Alcotest.(check (option int)) "no static size" None (Array_info.static_size a);
  Alcotest.(check (list string)) "dope syms" [ "n" ] (Array_info.dope_symbols a);
  let b = Array_info.make "b" Types.F32 [ Dim.const 8; Dim.const 8 ] in
  Alcotest.(check (option int)) "static size" (Some 64) (Array_info.static_size b);
  Alcotest.(check bool) "dims differ" false (Array_info.dims_equal a b)

let test_expr_helpers () =
  let e = E.(var "i" + int 1) in
  Alcotest.(check (list string)) "no arrays" [] (E.arrays_used e);
  let e2 = E.(load "a" [ var "i" ] * load "b" [ var "j" ]) in
  Alcotest.(check (list string)) "arrays in order" [ "a"; "b" ] (E.arrays_used e2);
  let vars = E.fold_vars (fun v acc -> v :: acc) e2 [] in
  Alcotest.(check bool) "vars found" true (List.mem "i" vars && List.mem "j" vars)

let test_expr_subst () =
  let e = E.(load "a" [ var "k" + int 1 ]) in
  let e' = E.subst_var "k" (E.int 5) e in
  (match e' with
  | E.Load ("a", [ E.Binop (E.Add, E.Int_lit (5, _), E.Int_lit (1, _)) ]) -> ()
  | _ -> Alcotest.fail "substitution failed");
  (* substitution does not capture other variables *)
  let e'' = E.subst_var "m" (E.int 0) e in
  Alcotest.(check bool) "no change" true (E.equal e e'')

let test_expr_typeof () =
  let elem = function "a" -> Types.F64 | _ -> Types.F32 in
  Alcotest.(check bool) "load type" true
    (E.typeof ~elem (E.load "a" [ E.int 0 ]) = Types.F64);
  Alcotest.(check bool) "comparison is bool" true
    (E.typeof ~elem E.(var "i" < int 3) = Types.Bool);
  Alcotest.(check bool) "mixed arith joins" true
    (E.typeof ~elem E.(load "a" [ E.int 0 ] + var "i") = Types.F64)

let test_stmt_collectors () =
  let body =
    [
      S.assign "a" [ E.var "i" ] E.(load "b" [ var "i" ] + load "b" [ var "i" + int 1 ]);
      S.for_ "k" (E.int 0) (E.int 7)
        [ S.assign "c" [ E.var "k" ] (E.load "a" [ E.var "k" ]) ];
    ]
  in
  Alcotest.(check int) "loads" 3 (List.length (S.loads body));
  Alcotest.(check int) "stores" 2 (List.length (S.stores body));
  Alcotest.(check (list string)) "stored arrays" [ "a"; "c" ] (S.stored_arrays body);
  Alcotest.(check int) "depth" 1 (S.loop_depth body);
  Alcotest.(check bool) "i read" true (List.mem "i" (S.scalars_read body))

let test_stmt_map_exprs () =
  let body = [ S.assign "a" [ E.var "i" ] (E.load "b" [ E.var "i" ]) ] in
  let body' = S.map_exprs (E.subst_var "i" (E.int 3)) body in
  match body' with
  | [ S.Assign (S.Larray ("a", [ E.Int_lit (3, _) ]), E.Load ("b", [ E.Int_lit (3, _) ])) ] -> ()
  | _ -> Alcotest.fail "map_exprs must rewrite subscripts and rhs"

let test_region_read_only () =
  let r =
    Region.make "k"
      [
        S.assign "a" [ E.var "i" ] E.(load "b" [ var "i" ] * load "c" [ var "i" ]);
        S.assign "c" [ E.var "i" ] (E.int 0);
      ]
  in
  Alcotest.(check (list string)) "referenced" [ "b"; "c"; "a" ]
    (Region.referenced_arrays r);
  Alcotest.(check (list string)) "read-only" [ "b" ] (Region.read_only_arrays r)

let test_region_clause_lookup () =
  let r =
    Region.make
      ~dim_groups:
        [ { Region.stated_dims = None; group_arrays = [ "x"; "y" ] };
          { Region.stated_dims = None; group_arrays = [ "z" ] } ]
      ~small:[ "x" ] "k" []
  in
  Alcotest.(check (option int)) "x in group 0" (Some 0) (Region.dim_group_of r "x");
  Alcotest.(check (option int)) "z in group 1" (Some 1) (Region.dim_group_of r "z");
  Alcotest.(check (option int)) "w nowhere" None (Region.dim_group_of r "w");
  Alcotest.(check bool) "x small" true (Region.is_small r "x");
  Alcotest.(check bool) "z not small" false (Region.is_small r "z")

let test_program_lookup () =
  let p =
    Program.make
      ~params:[ { E.vname = "n"; vtype = Types.I32 } ]
      ~arrays:[ Array_info.make "a" Types.F64 [ Dim.dyn "n" ] ]
      "p"
      [ Region.make "k" [ S.assign "a" [ E.int 0 ] (E.float 1.0) ] ]
  in
  Alcotest.(check bool) "find array" true (Program.find_array_opt p "a" <> None);
  Alcotest.(check bool) "missing array" true (Program.find_array_opt p "zz" = None);
  Alcotest.(check bool) "elem type" true (Program.elem_type p "a" = Types.F64);
  Alcotest.(check (list string)) "params" [ "n" ] (Program.param_names p)

let expect_invalid what p =
  match Validate.check p with
  | [] -> Alcotest.fail ("validation should reject: " ^ what)
  | _ -> ()

let test_validate_rejections () =
  let arr = Array_info.make "a" Types.F64 [ Dim.dyn "n" ] in
  let params = [ { E.vname = "n"; vtype = Types.I32 } ] in
  (* unknown array *)
  expect_invalid "unknown array"
    (Program.make ~params ~arrays:[ arr ] "p"
       [ Region.make "k" [ S.assign "zz" [ E.int 0 ] (E.float 1.) ] ]);
  (* wrong rank *)
  expect_invalid "wrong rank"
    (Program.make ~params ~arrays:[ arr ] "p"
       [ Region.make "k" [ S.assign "a" [ E.int 0; E.int 0 ] (E.float 1.) ] ]);
  (* undefined scalar *)
  expect_invalid "undefined scalar"
    (Program.make ~params ~arrays:[ arr ] "p"
       [ Region.make "k" [ S.assign "a" [ E.var "mystery" ] (E.float 1.) ] ]);
  (* duplicate region names *)
  expect_invalid "duplicate regions"
    (Program.make ~params ~arrays:[ arr ] "p"
       [ Region.make "k" [ S.assign "a" [ E.int 0 ] (E.float 1.) ];
         Region.make "k" [ S.assign "a" [ E.int 1 ] (E.float 2.) ] ]);
  (* index shadowing *)
  expect_invalid "shadowed index"
    (Program.make ~params ~arrays:[ arr ] "p"
       [
         Region.make "k"
           [
             S.for_ "i" (E.int 0) (E.int 3)
               [ S.for_ "i" (E.int 0) (E.int 3) [ S.assign "a" [ E.var "i" ] (E.float 1.) ] ];
           ];
       ]);
  (* parallel loop under a sequential loop *)
  expect_invalid "parallel under seq"
    (Program.make ~params ~arrays:[ arr ] "p"
       [
         Region.make "k"
           [
             S.for_ ~sched:S.Seq "i" (E.int 0) (E.int 3)
               [
                 S.for_ ~sched:(S.Gang None) "j" (E.int 0) (E.int 3)
                   [ S.assign "a" [ E.var "j" ] (E.float 1.) ];
               ];
           ];
       ])

let test_validate_accepts () =
  let arr = Array_info.make "a" Types.F64 [ Dim.dyn "n" ] in
  let params = [ { E.vname = "n"; vtype = Types.I32 } ] in
  let p =
    Program.make ~params ~arrays:[ arr ] "p"
      [
        Region.make "k"
          [
            S.for_ ~sched:(S.Gang_vector (None, Some 64)) "i" (E.int 0)
              E.(var "n" - int 1)
              [
                S.Local ({ E.vname = "t"; vtype = Types.F64 }, Some (E.float 0.));
                S.assign "a" [ E.var "i" ] (E.var ~ty:Types.F64 "t");
              ];
          ];
      ]
  in
  Alcotest.(check int) "valid" 0 (List.length (Validate.check p))

let suite =
  [
    Alcotest.test_case "types sizes" `Quick test_types_sizes;
    Alcotest.test_case "types join" `Quick test_types_join;
    Alcotest.test_case "dims" `Quick test_dim_static;
    Alcotest.test_case "array info" `Quick test_array_info;
    Alcotest.test_case "expr helpers" `Quick test_expr_helpers;
    Alcotest.test_case "expr substitution" `Quick test_expr_subst;
    Alcotest.test_case "expr typing" `Quick test_expr_typeof;
    Alcotest.test_case "stmt collectors" `Quick test_stmt_collectors;
    Alcotest.test_case "stmt map_exprs" `Quick test_stmt_map_exprs;
    Alcotest.test_case "region read-only" `Quick test_region_read_only;
    Alcotest.test_case "region clause lookup" `Quick test_region_clause_lookup;
    Alcotest.test_case "program lookup" `Quick test_program_lookup;
    Alcotest.test_case "validation rejections" `Quick test_validate_rejections;
    Alcotest.test_case "validation accepts" `Quick test_validate_accepts;
  ]
