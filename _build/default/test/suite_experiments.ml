(* Regression tests for the experiment harness itself: the table
   generators must keep producing the paper's structure (row counts,
   NA positions, orderings). These use the compile-only experiments;
   the timed figures are exercised by `bench/main.exe` and captured in
   bench_output.txt. *)

open Safara_suites

let test_table1_structure () =
  let rows = Experiments.table1 () in
  Alcotest.(check int) "seven hot kernels" 7 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Experiments.rr_kernel ^ " small saves") true
        (r.Experiments.rr_small < r.Experiments.rr_base);
      (match r.Experiments.rr_dim with
      | Some d ->
          Alcotest.(check bool) (r.Experiments.rr_kernel ^ " dim saves more") true
            (d < r.Experiments.rr_small)
      | None -> Alcotest.fail "table I has no NA rows");
      Alcotest.(check bool) (r.Experiments.rr_kernel ^ " saved positive") true
        (r.Experiments.rr_saved > 0))
    rows;
  (* HOT1 is the largest kernel, as in the paper *)
  (match rows with
  | first :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "HOT1 is the register maximum" true
            (r.Experiments.rr_base <= first.Experiments.rr_base))
        rest
  | [] -> Alcotest.fail "empty table");
  (* magnitudes in the paper's neighbourhood *)
  let hot1 = List.hd rows in
  Alcotest.(check bool) "HOT1 base near the paper's 128" true
    (hot1.Experiments.rr_base >= 100 && hot1.Experiments.rr_base <= 200)

let test_table2_structure () =
  let rows = Experiments.table2 () in
  Alcotest.(check int) "ten hot kernels" 10 (List.length rows);
  let na =
    List.filteri (fun _ r -> r.Experiments.rr_dim = None) rows
    |> List.map (fun r -> r.Experiments.rr_kernel)
  in
  Alcotest.(check (list string)) "NA rows as in the paper"
    [ "HOT1"; "HOT3"; "HOT6"; "HOT10" ] na;
  let hot6 = List.nth rows 5 in
  Alcotest.(check int) "HOT6 small saves nothing" hot6.Experiments.rr_base
    hot6.Experiments.rr_small;
  let hot8 = List.nth rows 7 in
  List.iteri
    (fun i r ->
      if i <> 7 then
        Alcotest.(check bool) "HOT8 is the monster" true
          (r.Experiments.rr_base <= hot8.Experiments.rr_base))
    rows

let test_offsets_structure () =
  let rows = Experiments.offsets () in
  Alcotest.(check int) "four configurations" 4 (List.length rows);
  match rows with
  | [ base; small; dim; both ] ->
      (* the paper's 15-scalar story: 3 vz arrays x 5 + value_dz's 5 *)
      Alcotest.(check int) "base loads 4 descriptors" 20 base.Experiments.od_dope_loads;
      Alcotest.(check int) "small does not change descriptor count" 20
        small.Experiments.od_dope_loads;
      Alcotest.(check int) "dim shares one descriptor" 5 dim.Experiments.od_dope_loads;
      Alcotest.(check int) "dim+small too" 5 both.Experiments.od_dope_loads;
      Alcotest.(check bool) "registers fall monotonically to both" true
        (both.Experiments.od_regs < base.Experiments.od_regs
        && dim.Experiments.od_regs < base.Experiments.od_regs
        && small.Experiments.od_regs < base.Experiments.od_regs)
  | _ -> Alcotest.fail "unexpected structure"

let test_average_is_geomean () =
  let rows =
    [ { Experiments.sr_id = "a"; sr_values = [ ("x", 1.0) ] };
      { Experiments.sr_id = "b"; sr_values = [ ("x", 4.0) ] } ]
  in
  let avg = Experiments.average rows in
  Alcotest.(check (float 1e-9)) "geomean(1,4) = 2" 2.0
    (List.assoc "x" avg.Experiments.sr_values)

let suite =
  [
    Alcotest.test_case "table I structure" `Quick test_table1_structure;
    Alcotest.test_case "table II structure" `Quick test_table2_structure;
    Alcotest.test_case "offsets structure" `Quick test_offsets_structure;
    Alcotest.test_case "average is geometric" `Quick test_average_is_geomean;
  ]
