test/suite_analysis.ml: Affine Alcotest Coalescing Dependence Format List Mapping Option Parallelism Printf Reuse Safara_analysis Safara_gpu Safara_ir Safara_lang Schedule Spaces String
