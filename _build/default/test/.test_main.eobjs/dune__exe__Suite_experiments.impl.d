test/suite_experiments.ml: Alcotest Experiments List Safara_suites
