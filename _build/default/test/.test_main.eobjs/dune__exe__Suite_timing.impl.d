test/suite_timing.ml: Alcotest Array Hashtbl List Printf Safara_gpu Safara_ir Safara_sim Safara_vir
