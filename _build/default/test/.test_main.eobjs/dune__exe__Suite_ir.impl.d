test/suite_ir.ml: Alcotest Array_info Dim Expr List Program Region Safara_ir Stmt Types Validate
