test/suite_workloads.ml: Alcotest Int64 List Printf Registry Safara_core Safara_gpu Safara_ptxas Safara_sim Safara_suites Spec_seismic Spec_sp Workload
