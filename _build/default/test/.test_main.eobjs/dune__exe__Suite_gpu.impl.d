test/suite_gpu.ml: Alcotest Arch Latency Memspace Occupancy Printf Safara_gpu
