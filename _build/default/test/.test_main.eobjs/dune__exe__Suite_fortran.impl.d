test/suite_fortran.ml: Alcotest Array List Printexc Printf Safara_analysis Safara_core Safara_gpu Safara_ir Safara_lang Safara_sim Safara_transform Safara_vir Str_helpers
