test/suite_lang.ml: Alcotest Ast Fmt Frontend Lexer List Parser Printf Safara_ir Safara_lang Str_helpers String Token Typecheck
