test/suite_more.ml: Alcotest Array Filename Float Int64 List Printexc Printf Safara_analysis Safara_core Safara_gpu Safara_ir Safara_lang Safara_sim Safara_suites Str_helpers Sys
