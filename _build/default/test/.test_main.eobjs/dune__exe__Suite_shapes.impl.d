test/suite_shapes.ml: Alcotest Float List Printf Registry Safara_core Safara_sim Safara_suites Workload
