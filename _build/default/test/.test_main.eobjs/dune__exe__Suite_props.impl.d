test/suite_props.ml: Array Buffer Int64 List Printf QCheck QCheck_alcotest Safara_analysis Safara_core Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_sim Safara_transform Safara_vir
