test/suite_extras.ml: Alcotest Array List Printexc Printf Safara_analysis Safara_core Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_sim Safara_suites Safara_vir String
