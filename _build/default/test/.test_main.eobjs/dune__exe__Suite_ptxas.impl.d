test/suite_ptxas.ml: Alcotest Array Assemble Cfg Linear_scan List Liveness Pressure Safara_analysis Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_sim Safara_suites Safara_vir
