test/suite_vir.ml: Alcotest Array List Printf Safara_analysis Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_vir Str_helpers
