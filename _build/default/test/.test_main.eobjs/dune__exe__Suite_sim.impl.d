test/suite_sim.ml: Alcotest Array Interp Launch List Memory Safara_analysis Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_sim Safara_vir Value
