(* Tests for the GPU machine model: architecture parameters, latency
   table and the occupancy calculator. Occupancy expectations are
   hand-checked against the NVIDIA occupancy calculator for compute
   capability 3.5. *)

open Safara_gpu

let check_int = Alcotest.(check int)
let k20 = Arch.kepler_k20xm

let test_register_granularity () =
  (* 32 regs/thread * 32 threads = 1024, already a multiple of 256 *)
  check_int "32 regs" 1024 (Arch.registers_per_warp k20 ~regs_per_thread:32);
  (* 33 regs/thread * 32 = 1056 -> rounds to 1280 *)
  check_int "33 regs" 1280 (Arch.registers_per_warp k20 ~regs_per_thread:33);
  check_int "1 reg" 256 (Arch.registers_per_warp k20 ~regs_per_thread:1)

let occ ?(shared = 0) threads regs =
  Occupancy.calculate k20
    {
      Occupancy.threads_per_block = threads;
      regs_per_thread = regs;
      shared_bytes_per_block = shared;
    }

let test_occupancy_full () =
  (* 256 threads, 32 regs: 8 warps/block; regs/block = 8*1024 = 8192;
     65536/8192 = 8 blocks = 64 warps = 100% *)
  let r = occ 256 32 in
  check_int "blocks" 8 r.Occupancy.blocks_per_sm;
  check_int "warps" 64 r.Occupancy.active_warps;
  Alcotest.(check (float 0.001)) "occupancy" 1.0 r.Occupancy.occupancy

let test_occupancy_register_limited () =
  (* 256 threads, 64 regs: regs/warp = 2048; warps by regs = 32; blocks
     by regs = 32/8 = 4 -> 32 warps = 50% *)
  let r = occ 256 64 in
  check_int "blocks" 4 r.Occupancy.blocks_per_sm;
  check_int "warps" 32 r.Occupancy.active_warps;
  Alcotest.(check bool)
    "limited by registers" true
    (r.Occupancy.limiter = Occupancy.Registers)

let test_occupancy_high_pressure () =
  (* 128 threads, 200 regs: regs/warp = ceil(200*32/256)*256 = 6400;
     warps by regs = 65536/6400 = 10; blocks = 10/4 = 2 -> 8 warps *)
  let r = occ 128 200 in
  check_int "blocks" 2 r.Occupancy.blocks_per_sm;
  check_int "warps" 8 r.Occupancy.active_warps

let test_occupancy_block_limited () =
  (* tiny blocks: 32 threads, few regs -> capped at 16 blocks/SM *)
  let r = occ 32 16 in
  check_int "blocks" 16 r.Occupancy.blocks_per_sm;
  check_int "warps" 16 r.Occupancy.active_warps;
  Alcotest.(check bool)
    "limited by blocks" true
    (r.Occupancy.limiter = Occupancy.Blocks)

let test_occupancy_shared_limited () =
  let r = occ ~shared:25000 256 16 in
  check_int "blocks (shared)" 1 r.Occupancy.blocks_per_sm;
  Alcotest.(check bool)
    "limited by shared" true
    (r.Occupancy.limiter = Occupancy.Shared_memory)

let test_occupancy_infeasible () =
  let r = occ 2048 16 in
  check_int "too many threads" 0 r.Occupancy.blocks_per_sm;
  let r = occ 256 300 in
  check_int "too many regs" 0 r.Occupancy.blocks_per_sm

let test_occupancy_monotone_in_registers () =
  (* more registers per thread never increases occupancy *)
  let prev = ref max_int in
  for regs = 1 to k20.Arch.max_registers_per_thread do
    let r = occ 256 regs in
    Alcotest.(check bool)
      (Printf.sprintf "monotone at %d regs" regs)
      true
      (r.Occupancy.active_warps <= !prev);
    prev := r.Occupancy.active_warps
  done

let test_max_regs_full_occupancy () =
  (* 256-thread blocks reach 64 warps with <= 32 regs/thread on K20 *)
  check_int "threshold" 32
    (Occupancy.max_regs_for_full_occupancy k20 ~threads_per_block:256)

let test_fermi_has_no_ro_cache () =
  Alcotest.(check bool) "kepler" true k20.Arch.has_read_only_cache;
  Alcotest.(check bool) "fermi" false Arch.fermi_like.Arch.has_read_only_cache

let test_latency_ordering () =
  let t = Latency.kepler in
  let lat space access = Latency.memory_latency t space access in
  Alcotest.(check bool)
    "shared is fastest memory" true
    (lat Memspace.Shared Memspace.Coalesced < lat Memspace.Read_only Memspace.Coalesced);
  Alcotest.(check bool)
    "read-only beats global" true
    (lat Memspace.Read_only Memspace.Coalesced < lat Memspace.Global Memspace.Coalesced);
  Alcotest.(check bool)
    "uncoalesced worse than coalesced" true
    (lat Memspace.Global (Memspace.Uncoalesced 32) > lat Memspace.Global Memspace.Coalesced);
  (* degree matters: 32 transactions slower than 4 *)
  Alcotest.(check bool)
    "transaction count matters" true
    (lat Memspace.Global (Memspace.Uncoalesced 32) > lat Memspace.Global (Memspace.Uncoalesced 4))

let test_transactions () =
  let txn = Memspace.transactions ~warp_size:32 ~segment_bytes:128 in
  check_int "f32 coalesced" 1 (txn ~elem_bytes:4 Memspace.Coalesced);
  check_int "f64 coalesced" 2 (txn ~elem_bytes:8 Memspace.Coalesced);
  check_int "fully scattered" 32 (txn ~elem_bytes:4 (Memspace.Uncoalesced 32));
  check_int "invariant" 1 (txn ~elem_bytes:8 Memspace.Invariant);
  check_int "clamped" 32 (txn ~elem_bytes:4 (Memspace.Uncoalesced 99))

let test_constant_serialization () =
  let t = Latency.kepler in
  Alcotest.(check bool)
    "divergent constant access is serialized" true
    (Latency.memory_latency t Memspace.Constant (Memspace.Uncoalesced 8)
    > Latency.memory_latency t Memspace.Constant Memspace.Coalesced)

let suite =
  [
    Alcotest.test_case "register allocation granularity" `Quick test_register_granularity;
    Alcotest.test_case "full occupancy" `Quick test_occupancy_full;
    Alcotest.test_case "register-limited occupancy" `Quick test_occupancy_register_limited;
    Alcotest.test_case "high register pressure" `Quick test_occupancy_high_pressure;
    Alcotest.test_case "block-limited occupancy" `Quick test_occupancy_block_limited;
    Alcotest.test_case "shared-memory-limited occupancy" `Quick test_occupancy_shared_limited;
    Alcotest.test_case "infeasible launches" `Quick test_occupancy_infeasible;
    Alcotest.test_case "occupancy monotone in registers" `Quick test_occupancy_monotone_in_registers;
    Alcotest.test_case "max regs for full occupancy" `Quick test_max_regs_full_occupancy;
    Alcotest.test_case "fermi lacks read-only cache" `Quick test_fermi_has_no_ro_cache;
    Alcotest.test_case "latency ordering" `Quick test_latency_ordering;
    Alcotest.test_case "warp transactions" `Quick test_transactions;
    Alcotest.test_case "constant serialization" `Quick test_constant_serialization;
  ]
