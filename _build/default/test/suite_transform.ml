(* Transformation tests: scalar replacement (structure + semantics),
   the SAFARA feedback driver, clause verification and unrolling. *)

module S = Safara_ir.Stmt
module E = Safara_ir.Expr
open Safara_transform

let arch = Safara_gpu.Arch.kepler_k20xm
let latency = Safara_gpu.Latency.kepler

(* run a program functionally under a profile and return named array
   contents *)
let run_profile profile src ~scalars ~ints ~init ~out =
  let c = Safara_core.Compiler.compile_src profile src in
  ignore ints;
  let env = Safara_core.Compiler.make_env c ~scalars in
  init env.Safara_sim.Interp.mem;
  Safara_core.Compiler.run_functional c env;
  List.map
    (fun a -> (a, Array.copy (Safara_sim.Memory.float_data env.Safara_sim.Interp.mem a)))
    out

let check_profiles_agree name src ~scalars ~ints ~init ~out =
  let base = run_profile Safara_core.Compiler.Base src ~scalars ~ints ~init ~out in
  List.iter
    (fun profile ->
      let got = run_profile profile src ~scalars ~ints ~init ~out in
      List.iter2
        (fun (a, expected) (_, actual) ->
          if expected <> actual then
            Alcotest.fail
              (Printf.sprintf "%s: profile %s changed array %s" name
                 (Safara_core.Compiler.profile_name profile)
                 a))
        base got)
    [ Safara_core.Compiler.Safara_only; Safara_core.Compiler.Small_only;
      Safara_core.Compiler.Clauses_only; Safara_core.Compiler.Full;
      Safara_core.Compiler.Pgi_like ]

let fig5_src =
  {|
param int jsize;
param int isize;
double a[isize][jsize];
in double b[jsize][isize];
double c[jsize];
double d[jsize];
#pragma acc kernels name(fig5) small(a, b, c, d)
{
  #pragma acc loop gang vector(128)
  for (j = 1; j <= jsize - 2; j++) {
    c[j] = b[j][0] + b[j][1];
    d[j] = c[j] * b[j][0];
    #pragma acc loop seq
    for (i = 1; i <= isize - 2; i++) {
      a[i][j] = a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
|}

let fig5_init mem =
  let b = Safara_sim.Memory.float_data mem "b" in
  Array.iteri (fun i _ -> b.(i) <- cos (float_of_int i *. 0.017)) b;
  let a = Safara_sim.Memory.float_data mem "a" in
  Array.iteri (fun i _ -> a.(i) <- sin (float_of_int i *. 0.003)) a

let fig5_scalars =
  [ ("jsize", Safara_sim.Value.I 96); ("isize", Safara_sim.Value.I 40) ]

let test_fig5_semantics_preserved () =
  check_profiles_agree "fig5" fig5_src ~scalars:fig5_scalars
    ~ints:[ ("jsize", 96); ("isize", 40) ]
    ~init:fig5_init ~out:[ "a"; "c"; "d" ]

(* structural check: after SR on fig5 the inner loop contains exactly
   one load of b (the leading rotating load) *)
let test_fig5_structure_fig6 () =
  let prog = Safara_lang.Frontend.compile fig5_src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let r = List.hd prog.Safara_ir.Program.regions in
  let cands = Safara_analysis.Reuse.candidates ~arch ~latency prog r in
  let b_cands = List.filter (fun c -> c.Safara_analysis.Reuse.c_array = "b") cands in
  let r' = Scalar_replacement.apply r b_cands in
  (* count loads of b inside the i loop *)
  let b_loads_in_i = ref (-1) in
  let rec find stmts =
    List.iter
      (fun s ->
        match s with
        | S.For l when l.S.index.E.vname = "i" ->
            let count = ref 0 in
            S.iter
              (fun s ->
                let exprs =
                  match s with
                  | S.Assign (S.Larray (_, subs), e) -> e :: subs
                  | S.Assign (S.Lvar _, e) -> [ e ]
                  | S.Local (_, Some e) -> [ e ]
                  | S.Local (_, None) -> []
                  | S.For { S.lo; hi; _ } -> [ lo; hi ]
                  | S.If (c, _, _) -> [ c ]
                in
                List.iter
                  (fun e ->
                    count :=
                      !count
                      + List.length
                          (List.filter (fun a -> a = "b") (E.arrays_used e)))
                  exprs)
              l.S.body;
            b_loads_in_i := !count
        | S.For l -> find l.S.body
        | S.If (_, t, e) ->
            find t;
            find e
        | S.Assign _ | S.Local _ -> ())
      stmts
  in
  find r'.Safara_ir.Region.body;
  Alcotest.(check int) "one b load left in the i loop" 1 !b_loads_in_i

let test_sr_never_sequentializes () =
  (* fig3: applying whatever candidates exist must keep the loop
     parallelizable (only intra candidates are produced) *)
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(128)
  for (i = 1; i <= n - 2; i++) {
    a[i] = (b[i] + b[i+1]) / 2.0;
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let r = List.hd prog.Safara_ir.Program.regions in
  let cands = Safara_analysis.Reuse.candidates ~arch ~latency prog r in
  let r' = Scalar_replacement.apply r cands in
  Alcotest.(check bool) "loop i still parallel" true
    (Safara_analysis.Parallelism.loop_parallelizable r'.Safara_ir.Region.body "i"
    ||
    (* the loop still carries no new dependence: also acceptable if
       no candidate was applied at all *)
    cands = [])

let test_sr_intra_write_update () =
  (* read-modify-write of the same cell twice: scalar caches the value *)
  let src =
    {|
param int n;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= n - 1; i++) {
    a[i] = b[i] + 1.0;
    a[i] = a[i] * 2.0;
  }
}
|}
  in
  check_profiles_agree "rmw" src
    ~scalars:[ ("n", Safara_sim.Value.I 100) ]
    ~ints:[ ("n", 100) ]
    ~init:(fun mem ->
      let b = Safara_sim.Memory.float_data mem "b" in
      Array.iteri (fun i _ -> b.(i) <- float_of_int i) b)
    ~out:[ "a" ]

let test_sr_zero_trip_guard () =
  (* the carrier loop may execute zero times for some threads: the
     guard must prevent out-of-bounds rotating inits *)
  let src =
    {|
param int n;
param int m;
in double b[n];
double a[n];
#pragma acc kernels
{
  #pragma acc loop gang vector(32)
  for (j = 0; j <= n - 1; j++) {
    #pragma acc loop seq
    for (i = 1; i <= m; i++) {
      a[j] = a[j] + b[i] + b[i-1];
    }
  }
}
|}
  in
  (* m = 0: inner loop never runs *)
  check_profiles_agree "zero trip" src
    ~scalars:[ ("n", Safara_sim.Value.I 64); ("m", Safara_sim.Value.I 0) ]
    ~ints:[ ("n", 64); ("m", 0) ]
    ~init:(fun mem ->
      let b = Safara_sim.Memory.float_data mem "b" in
      Array.iteri (fun i _ -> b.(i) <- 1.0) b)
    ~out:[ "a" ]

(* --- SAFARA driver --------------------------------------------------- *)

let test_safara_rounds_terminate () =
  let c = Safara_core.Compiler.compile_src Safara_core.Compiler.Safara_only fig5_src in
  List.iter
    (fun (_, rounds) ->
      Alcotest.(check bool) "bounded rounds" true (List.length rounds <= 8))
    c.Safara_core.Compiler.c_logs

let test_safara_respects_budget () =
  (* with a tiny register cap, SAFARA must not spill: the assembled
     kernels stay within budget and spill bytes stay zero *)
  let config =
    {
      (Safara.default_config ~arch) with
      Safara.reg_cap = 40;
    }
  in
  let c =
    Safara_core.Compiler.compile_src ~safara_config:config
      Safara_core.Compiler.Safara_only fig5_src
  in
  List.iter
    (fun (_, report) ->
      Alcotest.(check int) "no spills" 0 report.Safara_ptxas.Assemble.spill_bytes)
    c.Safara_core.Compiler.c_kernels

let test_safara_uses_feedback () =
  let c = Safara_core.Compiler.compile_src Safara_core.Compiler.Safara_only fig5_src in
  match c.Safara_core.Compiler.c_logs with
  | (_, round1 :: _) :: _ ->
      Alcotest.(check bool) "feedback regs positive" true
        (round1.Safara.regs_before > 0);
      Alcotest.(check bool) "available = cap - used" true
        (round1.Safara.available
        = arch.Safara_gpu.Arch.max_registers_per_thread - round1.Safara.regs_before)
  | _ -> Alcotest.fail "no SAFARA rounds logged"

let test_safara_cost_model_ablation () =
  (* count-only ranking must change the order when an uncoalesced
     low-count candidate competes with a coalesced high-count one;
     at minimum, both configurations still produce valid code *)
  let config =
    { (Safara.default_config ~arch) with Safara.cost_model = `Count_only }
  in
  let c =
    Safara_core.Compiler.compile_src ~safara_config:config
      Safara_core.Compiler.Safara_only fig5_src
  in
  Alcotest.(check bool) "compiles" true (c.Safara_core.Compiler.c_kernels <> [])

(* --- clause runtime verification ------------------------------------ *)

let dim_src =
  {|
param int n;
param int m;
double u[n][m];
double v[n][m];
#pragma acc kernels name(k) dim((u, v)) small(u, v)
{
  #pragma acc loop gang vector(64)
  for (i = 0; i <= n - 1; i++) {
    u[i][0] = v[i][0] * 2.0;
  }
}
|}

let test_clause_runtime_ok () =
  let prog = Safara_lang.Frontend.compile dim_src in
  let r = List.hd prog.Safara_ir.Program.regions in
  Alcotest.(check int) "no violations" 0
    (List.length (Clause_check.runtime_verify ~env:[ ("n", 10); ("m", 20) ] prog r))

let test_clause_runtime_small_violation () =
  let prog = Safara_lang.Frontend.compile dim_src in
  let r = List.hd prog.Safara_ir.Program.regions in
  (* 30000 x 30000 doubles = 7.2 GB: small is a lie *)
  let violations =
    Clause_check.runtime_verify ~env:[ ("n", 30000); ("m", 30000) ] prog r
  in
  Alcotest.(check bool) "small violation detected" true
    (List.exists (fun v -> v.Clause_check.v_clause = `Small) violations)

let test_clause_dual_version_dispatch () =
  let prog = Safara_lang.Frontend.compile dim_src in
  let r = List.hd prog.Safara_ir.Program.regions in
  let chosen, violations =
    Clause_check.choose_version ~env:[ ("n", 30000); ("m", 30000) ] prog r
  in
  Alcotest.(check bool) "violations reported" true (violations <> []);
  Alcotest.(check bool) "clauses stripped" true
    (chosen.Safara_ir.Region.small = [] && chosen.Safara_ir.Region.dim_groups = [])

let test_clause_dim_mismatched_groups () =
  (* same symbolic dims but unequal runtime values in a stated group *)
  let src =
    {|
param int n;
param int m;
double u[n];
double v[m];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (i = 0; i <= n - 1; i++) {
    u[i] = 1.0;
    v[0] = 2.0;
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let r0 = List.hd prog.Safara_ir.Program.regions in
  (* inject the dim group manually: u and v have different symbolic dims
     so the static validator rejects it; runtime check with equal values
     must accept, with different values must reject *)
  let r =
    { r0 with Safara_ir.Region.dim_groups =
        [ { Safara_ir.Region.stated_dims = None; group_arrays = [ "u"; "v" ] } ] }
  in
  Alcotest.(check int) "equal extents ok" 0
    (List.length (Clause_check.runtime_verify ~env:[ ("n", 8); ("m", 8) ] prog r));
  Alcotest.(check bool) "unequal extents rejected" true
    (Clause_check.runtime_verify ~env:[ ("n", 8); ("m", 9) ] prog r <> [])

let test_dual_version_in_driver () =
  (* a truthful small clause keeps the optimized version; a lying one
     (array >= 4 GB) compiles the stripped version with more registers *)
  let src =
    {|
param int n;
double u[n][n];
double v[n][n];
#pragma acc kernels name(k) small(u, v)
{
  #pragma acc loop gang vector(64)
  for (j = 1; j <= n - 2; j++) {
    #pragma acc loop seq
    for (i = 1; i <= n - 2; i++) {
      u[j][i] = u[j][i-1] * 0.5 + v[j][i];
    }
  }
}
|}
  in
  let prog = Safara_lang.Frontend.compile src in
  let regs scalars =
    let c, violations =
      Safara_core.Compiler.compile_for_env Safara_core.Compiler.Clauses_only
        ~scalars prog
    in
    ((Safara_core.Compiler.report_of c "k").Safara_ptxas.Assemble.regs_used, violations)
  in
  let r_ok, v_ok = regs [ ("n", Safara_sim.Value.I 64) ] in
  (* 40000^2 doubles = 12.8 GB: the small clause lies *)
  let r_lie, v_lie = regs [ ("n", Safara_sim.Value.I 40000) ] in
  Alcotest.(check int) "truthful: no violations" 0 (List.length v_ok);
  Alcotest.(check bool) "lying: violation reported" true (v_lie <> []);
  Alcotest.(check bool) "lying: stripped version uses more registers" true
    (r_lie > r_ok)

(* --- unrolling ------------------------------------------------------- *)

let unroll_src =
  {|
param int n;
param int m;
in double b[n];
double a[n];
#pragma acc kernels name(k)
{
  #pragma acc loop gang vector(32)
  for (j = 0; j <= n - 1; j++) {
    #pragma acc loop seq
    for (i = 0; i <= m - 1; i++) {
      a[j] = a[j] + b[i] * 0.5;
    }
  }
}
|}

let run_unrolled factor m =
  let prog = Safara_lang.Frontend.compile unroll_src in
  let prog = Unroll.unroll_program ~factor prog in
  Safara_ir.Validate.check_exn prog;
  let c = Safara_core.Compiler.compile Safara_core.Compiler.Base prog in
  let scalars = [ ("n", Safara_sim.Value.I 32); ("m", Safara_sim.Value.I m) ] in
  let env = Safara_core.Compiler.make_env c ~scalars in
  let b = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "b" in
  Array.iteri (fun i _ -> b.(i) <- float_of_int (i + 1)) b;
  Safara_core.Compiler.run_functional c env;
  Array.copy (Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "a")

(* hmm: unrolling requires bodies without scalar assignment; a[j] +=
   qualifies since it is an array assignment *)
let test_unroll_semantics () =
  List.iter
    (fun m ->
      let reference = run_unrolled 1 m in
      List.iter
        (fun u ->
          let got = run_unrolled u m in
          if got <> reference then
            Alcotest.fail (Printf.sprintf "unroll %d changed results at m=%d" u m))
        [ 2; 3; 4 ])
    [ 0; 1; 5; 8; 9 ]

let test_unroll_identity_factor () =
  let prog = Safara_lang.Frontend.compile unroll_src in
  let prog' = Unroll.unroll_program ~factor:1 prog in
  Alcotest.(check bool) "factor 1 is identity" true (prog = prog')

let suite =
  [
    Alcotest.test_case "fig5 semantics across profiles" `Quick test_fig5_semantics_preserved;
    Alcotest.test_case "fig5 -> fig6 structure" `Quick test_fig5_structure_fig6;
    Alcotest.test_case "SR never sequentializes" `Quick test_sr_never_sequentializes;
    Alcotest.test_case "SR intra write update" `Quick test_sr_intra_write_update;
    Alcotest.test_case "SR zero-trip guard" `Quick test_sr_zero_trip_guard;
    Alcotest.test_case "SAFARA rounds terminate" `Quick test_safara_rounds_terminate;
    Alcotest.test_case "SAFARA respects budget" `Quick test_safara_respects_budget;
    Alcotest.test_case "SAFARA uses feedback" `Quick test_safara_uses_feedback;
    Alcotest.test_case "SAFARA cost-model ablation" `Quick test_safara_cost_model_ablation;
    Alcotest.test_case "clause runtime ok" `Quick test_clause_runtime_ok;
    Alcotest.test_case "clause small violation" `Quick test_clause_runtime_small_violation;
    Alcotest.test_case "clause dual-version dispatch" `Quick test_clause_dual_version_dispatch;
    Alcotest.test_case "clause dim runtime groups" `Quick test_clause_dim_mismatched_groups;
    Alcotest.test_case "dual-version in driver" `Quick test_dual_version_in_driver;
    Alcotest.test_case "unroll semantics" `Quick test_unroll_semantics;
    Alcotest.test_case "unroll factor 1" `Quick test_unroll_identity_factor;
  ]
