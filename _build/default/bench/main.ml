(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (see DESIGN.md's per-experiment index)
   and, additionally, bechamel microbenchmarks of the compiler passes
   themselves.

   Usage: main.exe [fig7|fig9|fig10|fig11|fig12|table1|table2|offsets|
                    ablations|micro|all]   (default: all)        *)

open Safara_suites

let run_fig7 () =
  print_string
    (Experiments.render_speedups
       ~title:"Figure 7: SPEC ACCEL speedup with SAFARA alone (vs OpenUH base)"
       (Experiments.fig7 ()))

let run_fig9 () =
  print_string
    (Experiments.render_speedups
       ~title:
         "Figure 9: SPEC ACCEL speedup, cumulative small / small+dim / small+dim+SAFARA"
       (Experiments.fig9 ()))

let run_fig10 () =
  print_string
    (Experiments.render_speedups
       ~title:"Figure 10: NAS speedup, cumulative small / small+dim / small+dim+SAFARA"
       (Experiments.fig10 ()))

let run_fig11 () =
  print_string
    (Experiments.render_norms
       ~title:
         "Figure 11: SPEC normalized execution time, OpenUH vs PGI-like (lower is better)"
       (Experiments.fig11 ()))

let run_fig12 () =
  print_string
    (Experiments.render_norms
       ~title:
         "Figure 12: NAS normalized execution time, OpenUH vs PGI-like (lower is better)"
       (Experiments.fig12 ()))

let run_table1 () =
  print_string
    (Experiments.render_regs
       ~title:"Table I: 355.seismic register usage via small and dim clauses"
       (Experiments.table1 ()))

let run_table2 () =
  print_string
    (Experiments.render_regs
       ~title:"Table II: 356.sp register usage via small and dim clauses"
       (Experiments.table2 ()))

let run_offsets () = print_string (Experiments.render_offsets (Experiments.offsets ()))

let run_ablations () =
  print_string (Experiments.render_ablations (Experiments.ablations ()))

let run_crossarch () =
  print_string (Experiments.render_crossarch (Experiments.crossarch ()))

let run_unroll () =
  print_string (Experiments.render_unroll (Experiments.unroll_study ()))

(* --- bechamel microbenchmarks of the compiler passes ---------------- *)

let micro_tests () =
  let open Bechamel in
  let arch = Safara_gpu.Arch.kepler_k20xm in
  let latency = Safara_gpu.Latency.kepler in
  let src = (Registry.find "355.seismic").Workload.source in
  let ast = Safara_lang.Parser.parse src in
  let prog = Safara_lang.Frontend.compile src in
  let resolved = Safara_analysis.Schedule.resolve_program prog in
  let region = List.hd resolved.Safara_ir.Program.regions in
  let kernel = Safara_vir.Codegen.compile_region ~arch resolved region in
  [
    Test.make ~name:"front-end: parse seismic"
      (Staged.stage (fun () -> ignore (Safara_lang.Parser.parse src)));
    Test.make ~name:"front-end: typecheck"
      (Staged.stage (fun () -> ignore (Safara_lang.Typecheck.check ast)));
    Test.make ~name:"analysis: dependences (hot1)"
      (Staged.stage (fun () ->
           ignore (Safara_analysis.Dependence.region_deps region.Safara_ir.Region.body)));
    Test.make ~name:"analysis: reuse candidates (hot1)"
      (Staged.stage (fun () ->
           ignore
             (Safara_analysis.Reuse.candidates ~arch ~latency resolved region)));
    Test.make ~name:"codegen: hot1 -> VIR"
      (Staged.stage (fun () ->
           ignore (Safara_vir.Codegen.compile_region ~arch resolved region)));
    Test.make ~name:"ptxas: allocate hot1"
      (Staged.stage (fun () ->
           ignore (Safara_ptxas.Assemble.assemble ~arch kernel)));
    Test.make ~name:"SAFARA: optimize hot1 (full feedback loop)"
      (Staged.stage (fun () ->
           ignore
             (Safara_transform.Safara.optimize_region ~arch ~latency resolved region)));
  ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  print_endline "Compiler-pass microbenchmarks (bechamel, monotonic clock)";
  print_endline "----------------------------------------------------------";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] -> Printf.printf "%-44s %12.1f ns/run\n%!" name t
          | _ -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    (micro_tests ())

let all () =
  Printf.printf
    "SAFARA reproduction evaluation — %s, latency table 'kepler'\n\
     profiles: base / SAFARA / small / small+dim / full(small+dim+SAFARA) / PGI-like\n\
     deterministic: fixed workload seeds, no simulator randomness\n\n"
    Safara_gpu.Arch.kepler_k20xm.Safara_gpu.Arch.name;
  run_table1 ();
  print_newline ();
  run_table2 ();
  print_newline ();
  run_offsets ();
  print_newline ();
  run_fig7 ();
  print_newline ();
  run_fig9 ();
  print_newline ();
  run_fig10 ();
  print_newline ();
  run_fig11 ();
  print_newline ();
  run_fig12 ();
  print_newline ();
  run_ablations ();
  print_newline ();
  run_crossarch ();
  print_newline ();
  run_unroll ();
  print_newline ();
  run_micro ()

let () =
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match cmd with
  | "fig7" -> run_fig7 ()
  | "fig9" -> run_fig9 ()
  | "fig10" -> run_fig10 ()
  | "fig11" -> run_fig11 ()
  | "fig12" -> run_fig12 ()
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "offsets" -> run_offsets ()
  | "ablations" -> run_ablations ()
  | "crossarch" -> run_crossarch ()
  | "unroll" -> run_unroll ()
  | "micro" -> run_micro ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown experiment %S; expected fig7|fig9|fig10|fig11|fig12|table1|table2|offsets|ablations|crossarch|unroll|micro|all\n"
        other;
      exit 2
