(* Register-pressure study on the paper's Fig-8 seismic kernel: how the
   dim and small clauses shrink the dope-vector/offset footprint, and
   what that does to occupancy (the Table I / §IV story).

   Run with: dune exec examples/register_pressure.exe *)

let fig8 ~small ~dim =
  Printf.sprintf
    {|
param int nx;
param int ny;
param int nz;
param double h;
double vz_1[nz][ny][nx];
double vz_2[nz][ny][nx];
double vz_3[nz][ny][nx];
out double value_dz[nz][ny][nx];
#pragma acc kernels name(hot) %s %s
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        value_dz[k][j][i] = (vz_1[k][j][i] - vz_1[k-1][j][i]) / h
                          + (vz_2[k][j][i] - vz_2[k-1][j][i]) / h
                          + (vz_3[k][j][i] - vz_3[k-1][j][i]) / h;
      }
    }
  }
}
|}
    (if dim then "dim([nz][ny][nx](vz_1, vz_2, vz_3, value_dz))" else "")
    (if small then "small(vz_1, vz_2, vz_3, value_dz)" else "")

let arch = Safara_gpu.Arch.kepler_k20xm

let () =
  print_endline "register pressure on the Fig-8 kernel (paper §IV, Table I)";
  print_endline "------------------------------------------------------------";
  Printf.printf "%-24s %6s %8s %8s %10s\n" "configuration" "regs" "instrs" "blocks" "occupancy";
  List.iter
    (fun (label, small, dim) ->
      let c =
        Safara_core.Compiler.compile_src Safara_core.Compiler.Clauses_only
          (fig8 ~small ~dim)
      in
      let k, report = List.hd c.Safara_core.Compiler.c_kernels in
      let occ =
        Safara_gpu.Occupancy.calculate arch
          {
            Safara_gpu.Occupancy.threads_per_block =
              Safara_vir.Kernel.threads_per_block k;
            regs_per_thread = report.Safara_ptxas.Assemble.regs_used;
            shared_bytes_per_block = 0;
          }
      in
      Printf.printf "%-24s %6d %8d %8d %9.0f%%\n" label
        report.Safara_ptxas.Assemble.regs_used
        report.Safara_ptxas.Assemble.instructions occ.Safara_gpu.Occupancy.blocks_per_sm
        (100. *. occ.Safara_gpu.Occupancy.occupancy))
    [
      ("base", false, false);
      ("+small", true, false);
      ("+dim", false, true);
      ("+small +dim", true, true);
    ];
  print_endline "";
  print_endline "the generated address code, with both clauses (note the single";
  print_endline "shared offset chain and the 32-bit arithmetic):";
  print_endline "";
  let c =
    Safara_core.Compiler.compile_src Safara_core.Compiler.Clauses_only
      (fig8 ~small:true ~dim:true)
  in
  let k, _ = List.hd c.Safara_core.Compiler.c_kernels in
  (* print only the sequential-loop body: instructions between the loop
     label and the back edge *)
  let code = k.Safara_vir.Kernel.code in
  let in_body = ref false in
  Array.iter
    (fun instr ->
      (match instr with
      | Safara_vir.Instr.Label l when String.length l > 7 && String.sub l 0 7 = "$L_loop" ->
          in_body := true
      | Safara_vir.Instr.Label l
        when String.length l > 10 && String.sub l 0 10 = "$L_endloop" ->
          in_body := false
      | _ -> ());
      if !in_body then print_endline (Safara_vir.Instr.to_string instr))
    code
