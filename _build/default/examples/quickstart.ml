(* Quickstart: compile an OpenACC kernel with and without the paper's
   optimizations, check both produce the same answer, and compare
   simulated GPU time.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
param int n;
in double b[n][n];
double a[n][n];

// transposed read: uncoalesced, the access pattern SAFARA loves to fix
#pragma acc kernels name(sweep) small(a, b)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= n - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= n - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= n - 2; i++) {
        a[k][i] = a[k][i-1] * 0.5 + b[k][i] + b[k][i-1];
      }
    }
  }
}
|}

let run profile =
  (* 1. compile under a profile *)
  let c = Safara_core.Compiler.compile_src profile source in
  (* 2. allocate device memory and fill the input *)
  let n = 96 in
  let env =
    Safara_core.Compiler.make_env c ~scalars:[ ("n", Safara_sim.Value.I n) ]
  in
  let b = Safara_sim.Memory.float_data env.Safara_sim.Interp.mem "b" in
  Array.iteri (fun i _ -> b.(i) <- sin (0.01 *. float_of_int i)) b;
  (* 3. run functionally (the semantic oracle) *)
  Safara_core.Compiler.run_functional c env;
  let checksum = Safara_sim.Memory.checksum env.Safara_sim.Interp.mem "a" in
  (* 4. estimate GPU time on the Kepler model *)
  let t = Safara_core.Compiler.time c env in
  let report = Safara_core.Compiler.report_of c "sweep" in
  (c, checksum, t.Safara_sim.Launch.total_ms, report.Safara_ptxas.Assemble.regs_used)

let () =
  print_endline "quickstart: one uncoalesced sweep kernel, base vs SAFARA";
  print_endline "---------------------------------------------------------";
  let _, sum_base, ms_base, regs_base = run Safara_core.Compiler.Base in
  let c, sum_full, ms_full, regs_full = run Safara_core.Compiler.Full in
  Printf.printf "base : %3d regs  %.4f ms  checksum %.10g\n" regs_base ms_base sum_base;
  Printf.printf "full : %3d regs  %.4f ms  checksum %.10g\n" regs_full ms_full sum_full;
  assert (sum_base = sum_full);
  Printf.printf "same answer, %.2fx faster with SAFARA + clauses\n" (ms_base /. ms_full);
  print_endline "\nwhat SAFARA did:";
  List.iter
    (fun (region, rounds) ->
      List.iter
        (fun r -> Format.printf "  %s: %a@." region Safara_transform.Safara.pp_round r)
        rounds)
    c.Safara_core.Compiler.c_logs
