(* The SAFARA feedback loop under a tight register budget — the
   paper's §III.B.4 running example: with only a handful of registers
   available, the cost model must pick the uncoalesced array b over
   the coalesced array a, and the loop iterates as the feedback
   reports the shrinking headroom.

   Run with: dune exec examples/feedback_loop.exe *)

let fig5 =
  {|
param int jsize;
param int isize;
double a[isize][jsize];
in double b[jsize][isize];
double c[jsize];
double d[jsize];
#pragma acc kernels name(fig5)
{
  #pragma acc loop gang vector(128)
  for (j = 1; j <= jsize - 2; j++) {
    c[j] = b[j][0] + b[j][1];
    d[j] = c[j] * b[j][0];
    #pragma acc loop seq
    for (i = 1; i <= isize - 2; i++) {
      a[i][j] = a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
|}

let arch = Safara_gpu.Arch.kepler_k20xm
let latency = Safara_gpu.Latency.kepler

let show_rounds ~reg_cap =
  Printf.printf "\n=== register budget: %d per thread ===\n" reg_cap;
  let config =
    { (Safara_transform.Safara.default_config ~arch) with
      Safara_transform.Safara.reg_cap }
  in
  let prog = Safara_lang.Frontend.compile fig5 in
  let prog = Safara_analysis.Schedule.resolve_program prog in
  let region = List.hd prog.Safara_ir.Program.regions in
  (* what the analysis sees, ranked by the C × L cost model *)
  Printf.printf "candidates (cost = references x latency):\n";
  List.iter
    (fun cand -> Format.printf "  %a@." Safara_analysis.Reuse.pp_candidate cand)
    (Safara_analysis.Reuse.candidates ~arch ~latency prog region);
  let _, rounds =
    Safara_transform.Safara.optimize_region ~config ~arch ~latency prog region
  in
  Printf.printf "feedback rounds:\n";
  List.iter (fun r -> Format.printf "  %a@." Safara_transform.Safara.pp_round r) rounds

let () =
  print_endline "SAFARA feedback iterations on the paper's Fig-5 program";
  print_endline "--------------------------------------------------------";
  (* paper's running example supposes a ~30-register hardware limit and
     a first compile using 26: SAFARA has 4 registers to spend and must
     choose array b (uncoalesced) over a (coalesced) *)
  show_rounds ~reg_cap:30;
  (* with the real Kepler cap everything fits and several rounds run *)
  show_rounds ~reg_cap:arch.Safara_gpu.Arch.max_registers_per_thread
