examples/quickstart.ml: Array Format List Printf Safara_core Safara_ptxas Safara_sim Safara_transform
