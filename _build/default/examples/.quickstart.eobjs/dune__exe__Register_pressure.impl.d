examples/register_pressure.ml: Array List Printf Safara_core Safara_gpu Safara_ptxas Safara_vir String
