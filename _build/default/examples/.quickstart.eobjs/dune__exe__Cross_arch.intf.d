examples/cross_arch.mli:
