examples/register_pressure.mli:
