examples/cross_arch.ml: Format List Printf Safara_analysis Safara_core Safara_gpu Safara_ir Safara_lang Safara_ptxas
