examples/feedback_loop.mli:
