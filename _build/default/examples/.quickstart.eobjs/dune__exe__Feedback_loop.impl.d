examples/feedback_loop.ml: Format List Printf Safara_analysis Safara_gpu Safara_ir Safara_lang Safara_transform
