examples/quickstart.mli:
