lib/transform/scalar_replacement.mli: Safara_analysis Safara_ir
