lib/transform/clause_check.ml: Format List Safara_ir
