lib/transform/unroll.ml: Fun List Safara_ir
