lib/transform/clause_check.mli: Format Safara_ir
