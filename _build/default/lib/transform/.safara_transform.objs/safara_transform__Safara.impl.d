lib/transform/safara.ml: Format List Logs Option Printf Safara_analysis Safara_gpu Safara_ir Safara_ptxas Safara_vir Scalar_replacement String
