lib/transform/scalar_replacement.ml: Array List Option Printf Safara_analysis Safara_ir String
