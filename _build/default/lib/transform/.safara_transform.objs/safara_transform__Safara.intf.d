lib/transform/safara.mli: Format Safara_analysis Safara_gpu Safara_ir
