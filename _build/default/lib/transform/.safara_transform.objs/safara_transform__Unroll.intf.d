lib/transform/unroll.mli: Safara_ir
