(** Loop unrolling (the paper's "future work" §VII combination:
    classical unrolling interacting with SAFARA and the clauses; used
    here by the ablation benchmarks).

    Unrolls an innermost sequential loop by a factor [u]: the body is
    replicated [u] times with the index substituted by [i], [i+1], …,
    [i+u-1]; a remainder loop covers the tail. Only loops whose body
    is free of inner loops and index assignments are unrolled. *)

val unroll_region :
  factor:int -> Safara_ir.Region.t -> Safara_ir.Region.t
(** Unrolls every eligible innermost [Seq] loop. Factor ≤ 1 is the
    identity. *)

val unroll_program : factor:int -> Safara_ir.Program.t -> Safara_ir.Program.t
