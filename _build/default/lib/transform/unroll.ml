module E = Safara_ir.Expr
module S = Safara_ir.Stmt

let rec has_loop stmts =
  List.exists
    (function
      | S.For _ -> true
      | S.If (_, t, e) -> has_loop t || has_loop e
      | S.Assign _ | S.Local _ -> false)
    stmts

(* the body must not declare locals (their replication would redeclare)
   nor assign scalars used across replicas; we keep the criterion
   simple and safe: no Local, no scalar assignment *)
let rec body_unrollable stmts =
  List.for_all
    (function
      | S.Assign (S.Larray _, _) -> true
      | S.Assign (S.Lvar _, _) | S.Local _ -> false
      | S.If (_, t, e) -> body_unrollable t && body_unrollable e
      | S.For _ -> false)
    stmts

let substitute idx replacement stmts =
  S.map_exprs (E.subst_var idx replacement) stmts

let rec unroll_stmts ~factor stmts =
  List.concat_map
    (fun s ->
      match s with
      | S.For l when l.S.sched = S.Seq && (not (has_loop l.S.body)) && body_unrollable l.S.body && factor > 1 ->
          let idx = l.S.index.E.vname in
          (* main loop: i = lo; i <= hi - (u-1); step u — expressed in
             canonical unit-step form over a compressed index u_i:
             we keep the original index and step by emitting the body
             u times per iteration of a loop with stride u. Canonical
             loops have unit step, so iterate over t in [0 .. trip/u-1]
             with i = lo + u*t. *)
          let u = factor in
          let t_name = "__u_" ^ idx in
          let lo = l.S.lo and hi = l.S.hi in
          (* trip = hi - lo + 1; main iterations = trip / u *)
          let trip = E.Binop (E.Add, E.Binop (E.Sub, hi, lo), E.int 1) in
          let main_hi = E.Binop (E.Sub, E.Binop (E.Div, trip, E.int u), E.int 1) in
          let i_of_t d =
            E.Binop
              ( E.Add,
                lo,
                E.Binop (E.Add, E.Binop (E.Mul, E.int u, E.var t_name), E.int d) )
          in
          let main_body =
            List.concat_map (fun d -> substitute idx (i_of_t d) l.S.body)
              (List.init u Fun.id)
          in
          let main_loop =
            S.For
              {
                S.index = { E.vname = t_name; vtype = Safara_ir.Types.I32 };
                lo = E.int 0;
                hi = main_hi;
                sched = S.Seq;
                reductions = [];
                body = main_body;
              }
          in
          (* remainder: i = lo + u*(trip/u) .. hi *)
          let rem_lo =
            E.Binop (E.Add, lo, E.Binop (E.Mul, E.int u, E.Binop (E.Div, trip, E.int u)))
          in
          let rem_loop = S.For { l with S.lo = rem_lo } in
          [ main_loop; rem_loop ]
      | S.For l -> [ S.For { l with S.body = unroll_stmts ~factor l.S.body } ]
      | S.If (c, t, e) ->
          [ S.If (c, unroll_stmts ~factor t, unroll_stmts ~factor e) ]
      | S.Assign _ | S.Local _ -> [ s ])
    stmts

let unroll_region ~factor (r : Safara_ir.Region.t) =
  if factor <= 1 then r
  else { r with Safara_ir.Region.body = unroll_stmts ~factor r.Safara_ir.Region.body }

let unroll_program ~factor (p : Safara_ir.Program.t) =
  { p with Safara_ir.Program.regions = List.map (unroll_region ~factor) p.Safara_ir.Program.regions }
