let compile ?name src =
  let ast = Parser.parse src in
  Typecheck.check_exn ast;
  let prog = Lower.program ?name ast in
  Safara_ir.Validate.check_exn prog;
  prog
