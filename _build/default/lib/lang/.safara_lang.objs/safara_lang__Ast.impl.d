lib/lang/ast.ml: Safara_ir
