lib/lang/ast.mli: Safara_ir
