lib/lang/parser.ml: Array Ast Format Lexer List Safara_ir Token
