lib/lang/emit.ml: Float List Option Printf Safara_ir String
