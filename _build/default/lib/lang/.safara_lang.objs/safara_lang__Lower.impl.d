lib/lang/lower.ml: Ast List Option Printf Safara_ir
