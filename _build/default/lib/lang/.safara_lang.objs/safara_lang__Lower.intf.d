lib/lang/lower.mli: Ast Safara_ir
