lib/lang/lexer.ml: Buffer List Option Printf String Token
