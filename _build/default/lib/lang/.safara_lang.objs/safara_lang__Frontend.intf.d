lib/lang/frontend.mli: Safara_ir
