lib/lang/typecheck.ml: Ast Format List Option Safara_ir String
