lib/lang/frontend.ml: Lower Parser Safara_ir Typecheck
