lib/lang/emit.mli: Safara_ir
