(** Recursive-descent parser for MiniACC.

    Grammar summary:
    {v
    program  := (decl | region)*
    decl     := "param" ty ident ";"
              | ["in"|"out"] ty ident ("[" dim "]")+ ";"
    region   := <#pragma acc kernels|parallel clauses...> block
    clauses  := name(id) | dim(dimgroup,...) | small(id,...)
    stmt     := ty ident ["=" expr] ";"
              | lhs ("="|"+="|"-="|"*="|"/=") expr ";"
              | "for" "(" i "=" e ";" i ("<="|"<") e ";" i "++" ")" body
              | "if" "(" expr ")" block ["else" block]
              | <#pragma acc loop sched... reduction(op:var)> for-stmt
    v}
    Expressions follow C precedence. [min]/[max] parse as calls. A
    parenthesized type name is a cast. *)

exception Error of Token.pos * string

val parse : string -> Ast.program
(** @raise Error on syntax errors, with source position.
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
