module E = Safara_ir.Expr
module S = Safara_ir.Stmt
module T = Safara_ir.Types
module D = Safara_ir.Dim
module A = Safara_ir.Array_info
module R = Safara_ir.Region

let type_name = function
  | T.I32 -> "int"
  | T.I64 -> "long"
  | T.F32 -> "float"
  | T.F64 -> "double"
  | T.Bool -> invalid_arg "emit: bool has no source type"

(* a float literal must re-lex as a float: force a decimal point *)
let float_text f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec expr_to_source (e : E.t) =
  match e with
  | E.Int_lit (n, _) -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | E.Float_lit (f, T.F32) ->
      if f < 0. then Printf.sprintf "(%sf)" (float_text f)
      else float_text f ^ "f"
  | E.Float_lit (f, _) ->
      if f < 0. then Printf.sprintf "(%s)" (float_text f) else float_text f
  | E.Var v -> v.E.vname
  | E.Load (a, subs) ->
      a ^ String.concat "" (List.map (fun s -> "[" ^ expr_to_source s ^ "]") subs)
  | E.Binop ((E.Min | E.Max) as op, a, b) ->
      Printf.sprintf "%s(%s, %s)"
        (match op with E.Min -> "min" | _ -> "max")
        (expr_to_source a) (expr_to_source b)
  | E.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_source a) (E.binop_to_string op)
        (expr_to_source b)
  | E.Unop (E.Neg, a) -> Printf.sprintf "(-%s)" (expr_to_source a)
  | E.Unop (E.Not, a) -> Printf.sprintf "(!%s)" (expr_to_source a)
  | E.Call (i, args) ->
      Printf.sprintf "%s(%s)" (E.intrinsic_to_string i)
        (String.concat ", " (List.map expr_to_source args))
  | E.Cast (ty, a) -> Printf.sprintf "(%s)(%s)" (type_name ty) (expr_to_source a)

let indent n = String.make (2 * n) ' '

let sched_clause = function
  | S.Seq -> Some "seq"
  | S.Auto -> None
  | S.Gang None -> Some "gang"
  | S.Gang (Some g) -> Some (Printf.sprintf "gang(%d)" g)
  | S.Vector None -> Some "vector"
  | S.Vector (Some v) -> Some (Printf.sprintf "vector(%d)" v)
  | S.Gang_vector (g, v) ->
      let part name = function
        | None -> name
        | Some n -> Printf.sprintf "%s(%d)" name n
      in
      Some (part "gang" g ^ " " ^ part "vector" v)

let rec stmt_lines depth (s : S.t) =
  let pad = indent depth in
  match s with
  | S.Assign (S.Lvar v, e) ->
      [ Printf.sprintf "%s%s = %s;" pad v.E.vname (expr_to_source e) ]
  | S.Assign (S.Larray (a, subs), e) ->
      [
        Printf.sprintf "%s%s%s = %s;" pad a
          (String.concat "" (List.map (fun x -> "[" ^ expr_to_source x ^ "]") subs))
          (expr_to_source e);
      ]
  | S.Local (v, None) ->
      [ Printf.sprintf "%s%s %s;" pad (type_name v.E.vtype) v.E.vname ]
  | S.Local (v, Some e) ->
      [
        Printf.sprintf "%s%s %s = %s;" pad (type_name v.E.vtype) v.E.vname
          (expr_to_source e);
      ]
  | S.For l ->
      let pragma =
        let sched = sched_clause l.S.sched in
        let reds =
          List.map
            (fun (op, v) ->
              Printf.sprintf "reduction(%s:%s)" (S.redop_to_string op) v.E.vname)
            l.S.reductions
        in
        match (sched, reds) with
        | None, [] -> []
        | _ ->
            [
              Printf.sprintf "%s#pragma acc loop %s" pad
                (String.concat " " (Option.to_list sched @ reds));
            ]
      in
      pragma
      @ [
          Printf.sprintf "%sfor (%s = %s; %s <= %s; %s++) {" pad l.S.index.E.vname
            (expr_to_source l.S.lo) l.S.index.E.vname (expr_to_source l.S.hi)
            l.S.index.E.vname;
        ]
      @ List.concat_map (stmt_lines (depth + 1)) l.S.body
      @ [ pad ^ "}" ]
  | S.If (c, t, []) ->
      [ Printf.sprintf "%sif (%s) {" pad (expr_to_source c) ]
      @ List.concat_map (stmt_lines (depth + 1)) t
      @ [ pad ^ "}" ]
  | S.If (c, t, e) ->
      [ Printf.sprintf "%sif (%s) {" pad (expr_to_source c) ]
      @ List.concat_map (stmt_lines (depth + 1)) t
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines (depth + 1)) e
      @ [ pad ^ "}" ]

let bound_to_source = function
  | D.Const n -> string_of_int n
  | D.Sym s -> s

let dim_group_to_source (g : R.dim_group) =
  let dims =
    match g.R.stated_dims with
    | None -> ""
    | Some dims ->
        String.concat ""
          (List.map
             (fun (d : D.t) ->
               match d.D.lower with
               | D.Const 0 -> "[" ^ bound_to_source d.D.extent ^ "]"
               | lb ->
                   Printf.sprintf "[%s:%s]" (bound_to_source lb)
                     (bound_to_source d.D.extent))
             dims)
  in
  Printf.sprintf "%s(%s)" dims (String.concat ", " g.R.group_arrays)

let region_lines (r : R.t) =
  let clauses =
    [ Printf.sprintf "name(%s)" r.R.rname ]
    @ (if r.R.dim_groups = [] then []
       else
         [
           "dim("
           ^ String.concat ", " (List.map dim_group_to_source r.R.dim_groups)
           ^ ")";
         ])
    @
    if r.R.small = [] then []
    else [ Printf.sprintf "small(%s)" (String.concat ", " r.R.small) ]
  in
  [
    Printf.sprintf "#pragma acc %s %s"
      (match r.R.kind with R.Kernels -> "kernels" | R.Parallel -> "parallel")
      (String.concat " " clauses);
    "{";
  ]
  @ List.concat_map (stmt_lines 1) r.R.body
  @ [ "}"; "" ]

let program (p : Safara_ir.Program.t) =
  let params =
    List.map
      (fun (v : E.var) ->
        Printf.sprintf "param %s %s;" (type_name v.E.vtype) v.E.vname)
      p.Safara_ir.Program.params
  in
  let arrays =
    List.map
      (fun (a : A.t) ->
        let intent =
          match a.A.intent with
          | A.Copy_in -> "in "
          | A.Copy_out -> "out "
          | A.Copy | A.Create -> ""
        in
        let dim_to_source (d : D.t) =
          match d.D.lower with
          | D.Const 0 -> "[" ^ bound_to_source d.D.extent ^ "]"
          | lb ->
              Printf.sprintf "[%s:%s]" (bound_to_source lb)
                (bound_to_source d.D.extent)
        in
        Printf.sprintf "%s%s %s%s;" intent (type_name a.A.elem) a.A.name
          (String.concat "" (List.map dim_to_source a.A.dims)))
      p.Safara_ir.Program.arrays
  in
  String.concat "\n"
    (params @ arrays @ [ "" ] @ List.concat_map region_lines p.Safara_ir.Program.regions)
