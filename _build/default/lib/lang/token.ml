type t =
  | Int_lit of int
  | Float_lit of float
  | Float32_lit of float
  | Ident of string
  | Kw_param
  | Kw_int
  | Kw_long
  | Kw_float
  | Kw_double
  | Kw_for
  | Kw_if
  | Kw_else
  | Kw_in
  | Kw_out
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Semi
  | Comma
  | Colon
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Plus_plus
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Bar_bar
  | Bang
  | Pragma of string
  | Eof

type pos = { line : int; col : int }

let to_string = function
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | Float32_lit f -> string_of_float f ^ "f"
  | Ident s -> s
  | Kw_param -> "param"
  | Kw_int -> "int"
  | Kw_long -> "long"
  | Kw_float -> "float"
  | Kw_double -> "double"
  | Kw_for -> "for"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_in -> "in"
  | Kw_out -> "out"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Semi -> ";"
  | Comma -> ","
  | Colon -> ":"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Plus_plus -> "++"
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Amp_amp -> "&&"
  | Bar_bar -> "||"
  | Bang -> "!"
  | Pragma s -> "#pragma acc " ^ s
  | Eof -> "<eof>"

let equal (a : t) (b : t) = a = b
let pp_pos ppf p = Format.fprintf ppf "line %d, col %d" p.line p.col
