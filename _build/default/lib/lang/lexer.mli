(** Hand-written lexer for MiniACC.

    Handles [//] line comments and [/* */] block comments. A line
    beginning with [#pragma acc] is collected into a single
    {!Token.t.Pragma} token carrying the rest of the line (with [\\]
    line continuations resolved), mirroring how a C compiler's
    preprocessor hands directives to the OpenACC front end. *)

exception Error of Token.pos * string

val tokenize : string -> (Token.t * Token.pos) list
(** Full token stream, terminated by [Eof].
    @raise Error on an unrecognizable character or malformed number. *)
