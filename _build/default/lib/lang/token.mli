(** Lexical tokens of MiniACC, a C-like array language with OpenACC
    directives (including the paper's proposed [dim] and [small]
    clauses). Directives arrive as whole-line [Pragma] tokens whose
    payload is re-lexed by the directive sub-parser. *)

type t =
  | Int_lit of int
  | Float_lit of float  (** [double] literal *)
  | Float32_lit of float  (** literal with [f] suffix *)
  | Ident of string
  | Kw_param
  | Kw_int
  | Kw_long
  | Kw_float
  | Kw_double
  | Kw_for
  | Kw_if
  | Kw_else
  | Kw_in  (** array intent: region only reads it (copyin) *)
  | Kw_out  (** array intent: copyout *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Semi
  | Comma
  | Colon
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Plus_plus
  | Eq_eq
  | Bang_eq
  | Lt
  | Le
  | Gt
  | Ge
  | Amp_amp
  | Bar_bar
  | Bang
  | Pragma of string  (** text after [#pragma acc] *)
  | Eof

type pos = { line : int; col : int }

val to_string : t -> string
val equal : t -> t -> bool
val pp_pos : Format.formatter -> pos -> unit
