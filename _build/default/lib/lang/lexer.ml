exception Error of Token.pos * string

type state = { src : string; mutable i : int; mutable line : int; mutable bol : int }

let peek st = if st.i < String.length st.src then Some st.src.[st.i] else None

let peek2 st =
  if st.i + 1 < String.length st.src then Some st.src.[st.i + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.i + 1
  | _ -> ());
  st.i <- st.i + 1

let pos st = { Token.line = st.line; col = st.i - st.bol + 1 }

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let keyword = function
  | "param" -> Some Token.Kw_param
  | "int" -> Some Token.Kw_int
  | "long" -> Some Token.Kw_long
  | "float" -> Some Token.Kw_float
  | "double" -> Some Token.Kw_double
  | "for" -> Some Token.Kw_for
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "in" -> Some Token.Kw_in
  | "out" -> Some Token.Kw_out
  | _ -> None

let lex_number st p =
  let start = st.i in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float = ref false in
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
      is_float := true;
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | Some '.', (Some _ | None) when peek2 st <> Some '.' ->
      is_float := true;
      advance st
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (match peek st with Some c -> is_digit c | None -> false) then
        raise (Error (p, "malformed exponent"));
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
  | _ -> ());
  let text = String.sub st.src start (st.i - start) in
  match peek st with
  | Some ('f' | 'F') when !is_float ->
      advance st;
      Token.Float32_lit (float_of_string text)
  | _ ->
      if !is_float then Token.Float_lit (float_of_string text)
      else Token.Int_lit (int_of_string text)

let lex_pragma st p =
  (* we are just past "#"; expect "pragma" then "acc"; collect the rest
     of the (possibly continued) line *)
  let read_word () =
    while peek st = Some ' ' || peek st = Some '\t' do
      advance st
    done;
    let start = st.i in
    while (match peek st with Some c -> is_alnum c | None -> false) do
      advance st
    done;
    String.sub st.src start (st.i - start)
  in
  let w1 = read_word () in
  if w1 <> "pragma" then raise (Error (p, "expected #pragma"));
  let w2 = read_word () in
  if w2 <> "acc" then raise (Error (p, "expected #pragma acc"));
  let buf = Buffer.create 64 in
  let rec collect () =
    match peek st with
    | None | Some '\n' -> ()
    | Some '\\' when peek2 st = Some '\n' ->
        advance st;
        advance st;
        Buffer.add_char buf ' ';
        collect ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        collect ()
  in
  collect ();
  Token.Pragma (String.trim (Buffer.contents buf))

let tokenize src =
  let st = { src; i = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit t p = toks := (t, p) :: !toks in
  let rec skip_ws_and_comments () =
    match (peek st, peek2 st) with
    | Some (' ' | '\t' | '\r' | '\n'), _ ->
        advance st;
        skip_ws_and_comments ()
    | Some '/', Some '/' ->
        while peek st <> None && peek st <> Some '\n' do
          advance st
        done;
        skip_ws_and_comments ()
    | Some '/', Some '*' ->
        let p = pos st in
        advance st;
        advance st;
        let rec until_close () =
          match (peek st, peek2 st) with
          | Some '*', Some '/' ->
              advance st;
              advance st
          | None, _ -> raise (Error (p, "unterminated comment"))
          | _ ->
              advance st;
              until_close ()
        in
        until_close ();
        skip_ws_and_comments ()
    | _ -> ()
  in
  let rec loop () =
    skip_ws_and_comments ();
    let p = pos st in
    match peek st with
    | None -> emit Token.Eof p
    | Some c ->
        (match c with
        | '#' ->
            advance st;
            emit (lex_pragma st p) p
        | c when is_digit c -> emit (lex_number st p) p
        | c when is_alpha c ->
            let start = st.i in
            while (match peek st with Some c -> is_alnum c | None -> false) do
              advance st
            done;
            let text = String.sub st.src start (st.i - start) in
            emit (Option.value (keyword text) ~default:(Token.Ident text)) p
        | _ ->
            let two tok =
              advance st;
              advance st;
              emit tok p
            and one tok =
              advance st;
              emit tok p
            in
            (match (c, peek2 st) with
            | '+', Some '+' -> two Token.Plus_plus
            | '+', Some '=' -> two Token.Plus_assign
            | '-', Some '=' -> two Token.Minus_assign
            | '*', Some '=' -> two Token.Star_assign
            | '/', Some '=' -> two Token.Slash_assign
            | '=', Some '=' -> two Token.Eq_eq
            | '!', Some '=' -> two Token.Bang_eq
            | '<', Some '=' -> two Token.Le
            | '>', Some '=' -> two Token.Ge
            | '&', Some '&' -> two Token.Amp_amp
            | '|', Some '|' -> two Token.Bar_bar
            | '+', _ -> one Token.Plus
            | '-', _ -> one Token.Minus
            | '*', _ -> one Token.Star
            | '/', _ -> one Token.Slash
            | '%', _ -> one Token.Percent
            | '=', _ -> one Token.Assign
            | '<', _ -> one Token.Lt
            | '>', _ -> one Token.Gt
            | '!', _ -> one Token.Bang
            | '(', _ -> one Token.Lparen
            | ')', _ -> one Token.Rparen
            | '[', _ -> one Token.Lbracket
            | ']', _ -> one Token.Rbracket
            | '{', _ -> one Token.Lbrace
            | '}', _ -> one Token.Rbrace
            | ';', _ -> one Token.Semi
            | ',', _ -> one Token.Comma
            | ':', _ -> one Token.Colon
            | _ -> raise (Error (p, Printf.sprintf "unexpected character %C" c))));
        if (match !toks with (Token.Eof, _) :: _ -> false | _ -> true) then loop ()
  in
  loop ();
  List.rev !toks
