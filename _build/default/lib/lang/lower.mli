(** Lowering from the MiniACC AST to the IR.

    Precondition: the program passed {!Typecheck.check}. Lowering
    normalizes [<] loop bounds to inclusive [<=] form, resolves
    [min]/[max] calls to IR binops, annotates every variable reference
    with its type, converts declaration intents to data-motion
    intents, numbers anonymous regions [k1], [k2], …, and converts
    [dim]-clause groups to IR dope-vector dimension groups. *)

val program : ?name:string -> Ast.program -> Safara_ir.Program.t
(** @raise Failure on constructs the type checker should have
    rejected (internal-error guard). *)
