(** MiniACC source emission from the IR — the inverse of the front
    end. Used by tooling (dumping transformed programs as compilable
    source) and by the round-trip tests: for any valid program [p],
    [Frontend.compile (emit p)] must be semantically identical to [p].

    Generated kernel-local scalars keep their IR names; region names
    are preserved via [name(...)] clauses. *)

val expr_to_source : Safara_ir.Expr.t -> string

val program : Safara_ir.Program.t -> string
(** Emit a complete compilable MiniACC program. *)
