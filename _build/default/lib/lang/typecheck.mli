(** Semantic analysis of MiniACC programs.

    Collects (rather than fail-fast raises) the kinds of errors the
    OpenACC front end would report: unknown identifiers, wrong
    subscript counts, non-integer subscripts, unknown intrinsics and
    wrong arities, assignments to parameters or loop indices,
    redeclarations, and malformed array dimensions. *)

type error = string

val check : Ast.program -> (unit, error list) result

val check_exn : Ast.program -> unit
(** @raise Failure with the rendered error report. *)
