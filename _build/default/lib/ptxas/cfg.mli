(** Control-flow graph over a kernel's flat instruction stream. *)

type block = {
  bid : int;
  first : int;  (** index of the first instruction (inclusive) *)
  last : int;  (** index of the last instruction (inclusive) *)
  succs : int list;
  preds : int list;
}

type t = {
  code : Safara_vir.Instr.t array;
  blocks : block array;
  label_block : (string * int) list;
}

val build : Safara_vir.Instr.t array -> t
(** Leaders: instruction 0, every label, every instruction following a
    branch. Fallthrough edges are added unless the block ends in an
    unconditional branch or [Ret]. *)

val block_of_index : t -> int -> int
(** Block containing an instruction index. *)

val pp : Format.formatter -> t -> unit
