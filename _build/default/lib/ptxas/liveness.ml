module V = Safara_vir.Vreg
module I = Safara_vir.Instr

type interval = { reg : V.t; i_start : int; i_end : int; use_count : int }

let block_live (cfg : Cfg.t) =
  let nb = Array.length cfg.Cfg.blocks in
  let live_in = Array.make nb V.Set.empty in
  let live_out = Array.make nb V.Set.empty in
  (* precompute per-block gen (upward-exposed uses) and kill (defs) *)
  let gen = Array.make nb V.Set.empty and kill = Array.make nb V.Set.empty in
  Array.iteri
    (fun k (b : Cfg.block) ->
      let g = ref V.Set.empty and d = ref V.Set.empty in
      for i = b.Cfg.first to b.Cfg.last do
        let instr = cfg.Cfg.code.(i) in
        List.iter
          (fun u -> if not (V.Set.mem u !d) then g := V.Set.add u !g)
          (I.uses instr);
        List.iter (fun x -> d := V.Set.add x !d) (I.defs instr)
      done;
      gen.(k) <- !g;
      kill.(k) <- !d)
    cfg.Cfg.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    for k = nb - 1 downto 0 do
      let b = cfg.Cfg.blocks.(k) in
      let out =
        List.fold_left
          (fun acc s -> V.Set.union acc live_in.(s))
          V.Set.empty b.Cfg.succs
      in
      let inn = V.Set.union gen.(k) (V.Set.diff out kill.(k)) in
      if not (V.Set.equal out live_out.(k)) || not (V.Set.equal inn live_in.(k))
      then begin
        live_out.(k) <- out;
        live_in.(k) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let intervals (cfg : Cfg.t) =
  let live_in, live_out = block_live cfg in
  let tbl : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  (* rid -> (start, end, uses) *)
  let regs : (int, V.t) Hashtbl.t = Hashtbl.create 64 in
  let touch r i ~is_use =
    Hashtbl.replace regs r.V.rid r;
    match Hashtbl.find_opt tbl r.V.rid with
    | None -> Hashtbl.replace tbl r.V.rid (i, i, if is_use then 1 else 0)
    | Some (s, e, u) ->
        Hashtbl.replace tbl r.V.rid
          (min s i, max e i, if is_use then u + 1 else u)
  in
  Array.iteri
    (fun k (b : Cfg.block) ->
      (* anything live-in is live at the block start; live-out at end *)
      V.Set.iter (fun r -> touch r b.Cfg.first ~is_use:false) live_in.(k);
      V.Set.iter (fun r -> touch r b.Cfg.last ~is_use:false) live_out.(k);
      for i = b.Cfg.first to b.Cfg.last do
        let instr = cfg.Cfg.code.(i) in
        List.iter (fun u -> touch u i ~is_use:true) (I.uses instr);
        List.iter (fun d -> touch d i ~is_use:false) (I.defs instr)
      done)
    cfg.Cfg.blocks;
  Hashtbl.fold
    (fun rid (s, e, u) acc ->
      { reg = Hashtbl.find regs rid; i_start = s; i_end = e; use_count = u } :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int.compare a.i_start b.i_start with
         | 0 -> Int.compare a.reg.V.rid b.reg.V.rid
         | c -> c)

let live_at iv i = i >= iv.i_start && i <= iv.i_end

let pp_interval ppf iv =
  Format.fprintf ppf "%s: [%d,%d] uses=%d" (V.to_string iv.reg) iv.i_start
    iv.i_end iv.use_count
