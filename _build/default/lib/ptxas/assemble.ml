module I = Safara_vir.Instr

type report = {
  kernel_name : string;
  regs_used : int;
  pred_regs : int;
  spill_bytes : int;
  spill_loads : int;
  spill_stores : int;
  instructions : int;
}

let count_spill_ops code =
  Array.fold_left
    (fun (ld, st) i ->
      match i with
      | I.Ld { note = "spill"; _ } -> (ld + 1, st)
      | I.St { note = "spill"; _ } -> (ld, st + 1)
      | _ -> (ld, st))
    (0, 0) code

let assemble ?max_regs ~arch (k : Safara_vir.Kernel.t) =
  let cap =
    Option.value max_regs ~default:arch.Safara_gpu.Arch.max_registers_per_thread
  in
  let rec go code spill_bytes round =
    if round > 16 then failwith "ptxas: spilling did not converge";
    let cfg = Cfg.build code in
    let res = Linear_scan.allocate ~max_regs:cap cfg in
    match res.Linear_scan.spilled with
    | [] -> (code, res, spill_bytes)
    | spilled ->
        let code', bytes = Spill.rewrite ~slot_base:spill_bytes spilled code in
        go code' (spill_bytes + bytes) (round + 1)
  in
  let code, res, spill_bytes = go k.Safara_vir.Kernel.code 0 0 in
  let spill_loads, spill_stores = count_spill_ops code in
  let k' = { k with Safara_vir.Kernel.code } in
  ( k',
    {
      kernel_name = k.Safara_vir.Kernel.kname;
      regs_used = res.Linear_scan.regs_used;
      pred_regs = res.Linear_scan.pred_used;
      spill_bytes;
      spill_loads;
      spill_stores;
      instructions = Array.length code;
    } )

let pp_report ppf r =
  Format.fprintf ppf
    "ptxas info: %s: %d registers, %d predicates, %d bytes spill (%d loads, %d stores), %d instructions"
    r.kernel_name r.regs_used r.pred_regs r.spill_bytes r.spill_loads
    r.spill_stores r.instructions
