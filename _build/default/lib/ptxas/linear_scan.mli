(** Linear-scan register allocation onto the GPU's 32-bit register
    file — our stand-in for the closed-source ptxas assembler whose
    "PTXAS Info" output SAFARA consumes as feedback (paper §III.B.2).

    64-bit values ([long]/[double]) occupy an even-aligned pair of
    consecutive 32-bit registers, which is why the [small] clause's
    32-bit offsets halve the address-arithmetic register cost (§IV.B).
    Predicates are allocated from a separate file and do not count.
    When demand exceeds [max_regs], the active interval with the
    furthest end is spilled. *)

type result = {
  assignment : (Safara_vir.Vreg.t * int) list;
      (** virtual register → first 32-bit unit index *)
  regs_used : int;  (** peak 32-bit units = the ptxas register count *)
  spilled : Safara_vir.Vreg.t list;
  pred_used : int;
}

val allocate : max_regs:int -> Cfg.t -> result
(** Allocate over the CFG's live intervals. *)

val verify : Cfg.t -> result -> (unit, string) Result.t
(** Check that no two simultaneously-live registers share a 32-bit
    unit and that 64-bit values are even-aligned — used by tests. *)
