module V = Safara_vir.Vreg

let per_instruction (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.code in
  let pressure = Array.make n 0 in
  List.iter
    (fun (iv : Liveness.interval) ->
      let w = V.width iv.Liveness.reg in
      if w > 0 then
        for i = iv.Liveness.i_start to min (n - 1) iv.Liveness.i_end do
          pressure.(i) <- pressure.(i) + w
        done)
    (Liveness.intervals cfg);
  pressure

let max_pressure cfg = Array.fold_left max 0 (per_instruction cfg)

let pp_listing ppf (k : Safara_vir.Kernel.t) =
  let cfg = Cfg.build k.Safara_vir.Kernel.code in
  let pressure = per_instruction cfg in
  Format.fprintf ppf "@[<v>// %s: register pressure (live 32-bit units)@,"
    k.Safara_vir.Kernel.kname;
  Array.iteri
    (fun i instr ->
      Format.fprintf ppf "%4d | %s@," pressure.(i)
        (Safara_vir.Instr.to_string instr))
    k.Safara_vir.Kernel.code;
  Format.fprintf ppf "// peak pressure: %d units@]" (max_pressure cfg)
