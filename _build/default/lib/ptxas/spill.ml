module V = Safara_vir.Vreg
module I = Safara_vir.Instr

let local_mem bytes =
  {
    I.m_space = Safara_gpu.Memspace.Local;
    m_access = Safara_gpu.Memspace.Coalesced;
    m_bytes = bytes;
  }

let rewrite ~slot_base spilled code =
  let next_rid =
    ref
      (Array.fold_left
         (fun acc i ->
           List.fold_left
             (fun acc (r : V.t) -> max acc (r.V.rid + 1))
             acc
             (I.defs i @ I.uses i))
         0 code)
  in
  let fresh rty =
    let r = { V.rid = !next_rid; rty } in
    incr next_rid;
    r
  in
  let slots = Hashtbl.create 8 in
  let offset = ref slot_base in
  List.iter
    (fun (r : V.t) ->
      Hashtbl.replace slots r.V.rid !offset;
      offset := !offset + max 4 (V.width r * 4))
    spilled;
  let is_spilled (r : V.t) = Hashtbl.mem slots r.V.rid in
  let out = ref [] in
  let emit i = out := i :: !out in
  Array.iter
    (fun instr ->
      let u_spilled = List.filter is_spilled (I.uses instr) in
      let d_spilled = List.filter is_spilled (I.defs instr) in
      if u_spilled = [] && d_spilled = [] then emit instr
      else begin
        (* reload spilled uses into fresh temps *)
        let subst = Hashtbl.create 4 in
        List.iter
          (fun (r : V.t) ->
            if not (Hashtbl.mem subst r.V.rid) then begin
              let addr = fresh Safara_ir.Types.I64 in
              let tmp = fresh r.V.rty in
              emit (I.Mov { dst = addr; src = I.Imm (Hashtbl.find slots r.V.rid) });
              emit
                (I.Ld
                   {
                     dst = tmp;
                     addr;
                     mem = local_mem (max 4 (V.width r * 4));
                     note = "spill";
                   });
              Hashtbl.replace subst r.V.rid tmp
            end)
          u_spilled;
        (* spilled defs write to a fresh temp, then store *)
        let def_tmps = Hashtbl.create 4 in
        List.iter
          (fun (r : V.t) ->
            if not (Hashtbl.mem def_tmps r.V.rid) then
              Hashtbl.replace def_tmps r.V.rid (fresh r.V.rty))
          d_spilled;
        let replace (r : V.t) =
          match Hashtbl.find_opt def_tmps r.V.rid with
          | Some t -> t
          | None -> (
              match Hashtbl.find_opt subst r.V.rid with
              | Some t -> t
              | None -> r)
        in
        (* defs take priority for the defined position; uses that are
           also defs read the reloaded value: map_regs cannot
           distinguish, so when a register is both used and defined we
           let the def temp stand for both — correct because the store
           below writes the new value, and instructions never read and
           write the same register with different roles except Mov-like
           updates, where the reload already populated subst and the
           def temp would shadow it. To stay sound, pre-copy the reload
           into the def temp. *)
        List.iter
          (fun (r : V.t) ->
            match (Hashtbl.find_opt subst r.V.rid, Hashtbl.find_opt def_tmps r.V.rid) with
            | Some reload, Some deft ->
                emit (I.Mov { dst = deft; src = I.Reg reload })
            | _ -> ())
          u_spilled;
        emit (I.map_regs replace instr);
        List.iter
          (fun (r : V.t) ->
            let addr = fresh Safara_ir.Types.I64 in
            emit (I.Mov { dst = addr; src = I.Imm (Hashtbl.find slots r.V.rid) });
            emit
              (I.St
                 {
                   src = I.Reg (Hashtbl.find def_tmps r.V.rid);
                   addr;
                   mem = local_mem (max 4 (V.width r * 4));
                   note = "spill";
                 }))
          d_spilled
      end)
    code;
  (Array.of_list (List.rev !out), !offset - slot_base)
