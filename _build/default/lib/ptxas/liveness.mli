(** Backward liveness dataflow and live-interval construction for the
    linear-scan allocator. A register's interval covers every
    instruction index at which it is live (or defined), so values that
    cross a loop back edge are live for the whole loop body — the
    long-lived dope-vector and base-pointer values the paper's clauses
    target end up with kernel-length intervals. *)

type interval = {
  reg : Safara_vir.Vreg.t;
  i_start : int;
  i_end : int;  (** inclusive *)
  use_count : int;
}

val block_live : Cfg.t -> Safara_vir.Vreg.Set.t array * Safara_vir.Vreg.Set.t array
(** (live-in, live-out) per block, to fixpoint. *)

val intervals : Cfg.t -> interval list
(** Sorted by increasing [i_start]. Registers that are defined but
    never live (dead definitions) still get a point interval at their
    definition. *)

val live_at : interval -> int -> bool
val pp_interval : Format.formatter -> interval -> unit
