(** Spill-code insertion: rewrites a kernel so that chosen virtual
    registers live in per-thread local memory (which on Kepler is
    L1-cached but still far slower than a register — the performance
    cliff the paper's feedback loop avoids by never over-allocating).

    Every use of a spilled register becomes a load from its local slot
    into a fresh short-lived temporary; every definition becomes a
    store. Slot addresses are materialized as immediates. *)

val rewrite :
  slot_base:int ->
  Safara_vir.Vreg.t list ->
  Safara_vir.Instr.t array ->
  Safara_vir.Instr.t array * int
(** [rewrite ~slot_base spilled code] returns the rewritten stream and
    the number of local-memory bytes used by the new slots. Slots are
    numbered from [slot_base] bytes. *)
