lib/ptxas/liveness.mli: Cfg Format Safara_vir
