lib/ptxas/liveness.ml: Array Cfg Format Hashtbl Int List Safara_vir
