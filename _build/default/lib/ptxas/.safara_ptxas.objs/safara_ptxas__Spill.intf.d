lib/ptxas/spill.mli: Safara_vir
