lib/ptxas/pressure.ml: Array Cfg Format List Liveness Safara_vir
