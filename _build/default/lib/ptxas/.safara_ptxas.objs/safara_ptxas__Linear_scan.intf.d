lib/ptxas/linear_scan.mli: Cfg Result Safara_vir
