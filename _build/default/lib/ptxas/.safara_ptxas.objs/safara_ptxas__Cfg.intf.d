lib/ptxas/cfg.mli: Format Safara_vir
