lib/ptxas/spill.ml: Array Hashtbl List Safara_gpu Safara_ir Safara_vir
