lib/ptxas/pressure.mli: Cfg Format Safara_vir
