lib/ptxas/assemble.mli: Format Safara_gpu Safara_vir
