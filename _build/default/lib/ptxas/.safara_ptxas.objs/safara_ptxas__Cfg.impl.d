lib/ptxas/cfg.ml: Array Format Int List Safara_vir String
