lib/ptxas/assemble.ml: Array Cfg Format Linear_scan Option Safara_gpu Safara_vir Spill
