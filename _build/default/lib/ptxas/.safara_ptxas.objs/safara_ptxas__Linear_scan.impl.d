lib/ptxas/linear_scan.ml: Array Cfg Fun Hashtbl List Liveness Printf Safara_vir
