(** Register-pressure reporting: how many 32-bit register units are
    simultaneously live at each instruction. The maximum over the
    kernel is a lower bound on any allocation (the test suite checks
    the linear-scan result never beats it), and the annotated listing
    is the debugging view for "where did my registers go" questions —
    on dope-vector-heavy kernels the pressure plateau starts right
    after the descriptor loads. *)

val per_instruction : Cfg.t -> int array
(** Live 32-bit units at (i.e. just before) each instruction index. *)

val max_pressure : Cfg.t -> int

val pp_listing : Format.formatter -> Safara_vir.Kernel.t -> unit
(** The instruction stream annotated with live-unit counts. *)
