(** The assembler driver: virtual ISA → register-allocated kernel plus
    the "PTXAS Info" feedback record SAFARA consumes (paper §III.B.2:
    "we use GPU tools to pinpoint the register usage information and
    feed it back to the OpenACC compiler"). *)

type report = {
  kernel_name : string;
  regs_used : int;  (** hardware 32-bit registers per thread *)
  pred_regs : int;
  spill_bytes : int;  (** local-memory bytes of spill slots *)
  spill_loads : int;  (** static count of reload instructions *)
  spill_stores : int;
  instructions : int;  (** static instruction count after allocation *)
}

val assemble :
  ?max_regs:int -> arch:Safara_gpu.Arch.t -> Safara_vir.Kernel.t ->
  Safara_vir.Kernel.t * report
(** Allocate registers (default cap:
    [arch.max_registers_per_thread]); if demand exceeds the cap,
    insert spill code and re-allocate to fixpoint. The returned kernel
    contains the final (possibly spill-augmented) code.
    @raise Failure if spilling fails to converge (pathological input). *)

val pp_report : Format.formatter -> report -> unit
