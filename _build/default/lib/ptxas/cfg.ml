module I = Safara_vir.Instr

type block = {
  bid : int;
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  code : I.t array;
  blocks : block array;
  label_block : (string * int) list;
}

let build code =
  let n = Array.length code in
  if n = 0 then { code; blocks = [||]; label_block = [] }
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i instr ->
        match instr with
        | I.Label _ -> leader.(i) <- true
        | _ ->
            if I.is_branch instr && i + 1 < n then leader.(i + 1) <- true)
      code;
    (* block boundaries *)
    let starts = ref [] in
    for i = n - 1 downto 0 do
      if leader.(i) then starts := i :: !starts
    done;
    let starts = Array.of_list !starts in
    let nb = Array.length starts in
    let last_of k = if k + 1 < nb then starts.(k + 1) - 1 else n - 1 in
    (* label -> block id *)
    let label_block = ref [] in
    for k = 0 to nb - 1 do
      for i = starts.(k) to last_of k do
        match code.(i) with
        | I.Label l -> label_block := (l, k) :: !label_block
        | _ -> ()
      done
    done;
    let label_block = !label_block in
    let succs = Array.make nb [] and preds = Array.make nb [] in
    for k = 0 to nb - 1 do
      let last = last_of k in
      let terminal = code.(last) in
      let targets =
        List.filter_map
          (fun l -> List.assoc_opt l label_block)
          (I.branch_targets terminal)
      in
      let fallthrough =
        match terminal with
        | I.Bra _ | I.Ret -> []
        | _ -> if k + 1 < nb then [ k + 1 ] else []
      in
      let all =
        List.sort_uniq Int.compare (targets @ fallthrough)
      in
      succs.(k) <- all;
      List.iter (fun s -> preds.(s) <- k :: preds.(s)) all
    done;
    let blocks =
      Array.init nb (fun k ->
          {
            bid = k;
            first = starts.(k);
            last = last_of k;
            succs = succs.(k);
            preds = List.rev preds.(k);
          })
    in
    { code; blocks; label_block }
  end

let block_of_index t i =
  let rec search lo hi =
    if lo > hi then invalid_arg "block_of_index"
    else
      let mid = (lo + hi) / 2 in
      let b = t.blocks.(mid) in
      if i < b.first then search lo (mid - 1)
      else if i > b.last then search (mid + 1) hi
      else mid
  in
  search 0 (Array.length t.blocks - 1)

let pp ppf t =
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d [%d..%d] -> %s@," b.bid b.first b.last
        (String.concat "," (List.map string_of_int b.succs)))
    t.blocks
