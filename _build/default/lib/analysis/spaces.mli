(** Memory-space assignment for arrays in an offload region
    (paper §III.B.1: shared, constant, read-only and global — our
    implementation, like the paper's, places data in the read-only
    path or global memory).

    An array goes to the read-only data cache when the target has one
    (Kepler), the region never stores to it, and its declared intent
    permits ([copyin]/[copy]). Everything else is global. *)

val space_of_array :
  arch:Safara_gpu.Arch.t ->
  Safara_ir.Region.t ->
  Safara_ir.Array_info.t ->
  Safara_gpu.Memspace.space

val region_spaces :
  arch:Safara_gpu.Arch.t ->
  Safara_ir.Program.t ->
  Safara_ir.Region.t ->
  (string * Safara_gpu.Memspace.space) list
(** Space of every array referenced by the region. *)
