(** Dependence-distance analysis over loop nests (Allen–Kennedy
    style), the engine behind both the legality rules and the reuse
    detection of scalar replacement (paper §III.A).

    References are collected with their enclosing loop context; pairs
    of references to the same array are subjected to per-dimension
    subscript tests (ZIV / strong SIV, with agreement checks when an
    index appears in several dimensions). The result is a distance
    vector over the common loop nest, with [Star] standing for an
    unknown/any distance (conservative). *)

type ref_kind = Read | Write

(** An array reference in context. *)
type aref = {
  array : string;
  subs : Safara_ir.Expr.t list;
  kind : ref_kind;
  id : int;  (** program-order position within the region *)
  nest : (string * Safara_ir.Stmt.sched) list;
      (** enclosing loops, outermost first: index name and schedule *)
  guard : int list;
      (** identifies the chain of enclosing [If] branches; two refs
          with different guards may not execute together *)
}

type distance = D of int | Star

type dep_kind = Flow | Anti | Output | Input

type dep = {
  d_src : aref;
  d_dst : aref;
  d_kind : dep_kind;
  d_dist : distance list;
      (** one entry per common enclosing loop, outermost first *)
}

val collect_refs : Safara_ir.Stmt.t list -> aref list
(** All array references in a region body, in program order.
    Subscript loads are visited before the enclosing reference. *)

val test_pair : aref -> aref -> distance list option
(** Dependence test between two references to the same array given
    [a.id < b.id]. [None] = provably independent. [Some dists] =
    (possible) dependence with the given distance vector over the
    common nest. *)

val region_deps : ?include_input:bool -> Safara_ir.Stmt.t list -> dep list
(** All pairwise dependences in a region body. Input (read-read)
    dependences are included only when [include_input] (default
    [false]); they drive reuse, not legality. *)

val carried_at : dep -> int -> bool
(** [carried_at d level] is true when the dependence is carried by the
    loop at [level] of the common nest: all outer distances are zero
    and the distance at [level] is non-zero or unknown. *)

val carried_anywhere : dep -> bool

val pp_dep : Format.formatter -> dep -> unit
val pp_distance : Format.formatter -> distance -> unit
val ref_to_string : aref -> string
