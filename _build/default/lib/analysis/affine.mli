(** Affine-form analysis of subscript expressions.

    A subscript is decomposed, relative to a set of loop-index
    variables, into [Σ coeff·index + const + rest] where [rest] is an
    additive loop-invariant expression (symbolic parameters, scalar
    locals). Two subscripts are "comparable" when their index
    coefficients and [rest] coincide; their constant difference is then
    a dependence/reuse distance. This is the subscript form required
    by the ZIV/SIV dependence tests and by the Jang-style coalescing
    model (paper §III.B.1). *)

type t = {
  coeffs : (string * int) list;
      (** loop-index name → integer coefficient; absent = 0; sorted by
          name, entries with zero coefficient removed *)
  const : int;
  rest : Safara_ir.Expr.t option;
      (** additive non-index part, normalized; [None] = 0 *)
}

val analyze : indices:string list -> Safara_ir.Expr.t -> t option
(** [None] when the expression is not affine in the given indices
    (e.g. [i*j], [a\[i\]] as a subscript, division by an index). *)

val coeff : t -> string -> int
(** Coefficient of an index (0 when absent). *)

val depends_on : t -> string -> bool

val comparable : t -> t -> bool
(** Same coefficients and same [rest]. *)

val distance : t -> t -> int option
(** [distance a b = Some (b.const - a.const)] when comparable. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
