module S = Safara_ir.Stmt
module R = Safara_ir.Region

let resolve (r : R.t) =
  let verdicts = Parallelism.analyze_body r.body in
  let parallelizable idx =
    (* inside a [parallel] construct an undirected loop is
       user-asserted independent (OpenACC semantics); the [kernels]
       construct leaves the decision to the compiler's analysis *)
    r.R.kind = R.Parallel
    ||
    match List.assoc_opt idx verdicts with
    | Some Parallelism.Parallel -> true
    | Some (Parallelism.Serial _) | None -> false
  in
  (* count how many parallel axes are already taken along the chain *)
  let rec rewrite ~axes_left ~can_promote stmts =
    List.map
      (fun s ->
        match s with
        | S.For l -> (
            let idx = l.S.index.Safara_ir.Expr.vname in
            match l.S.sched with
            | S.Auto ->
                if can_promote && axes_left > 0 && parallelizable idx then
                  S.For
                    {
                      l with
                      S.sched = S.Gang_vector (None, None);
                      body =
                        rewrite ~axes_left:(axes_left - 1) ~can_promote l.S.body;
                    }
                else
                  S.For
                    {
                      l with
                      S.sched = S.Seq;
                      body = rewrite ~axes_left ~can_promote:false l.S.body;
                    }
            | S.Seq ->
                S.For
                  { l with S.body = rewrite ~axes_left ~can_promote:false l.S.body }
            | S.Gang _ | S.Vector _ | S.Gang_vector _ ->
                S.For { l with S.body = rewrite ~axes_left ~can_promote l.S.body })
        | S.If (c, t, e) ->
            S.If
              ( c,
                rewrite ~axes_left ~can_promote t,
                rewrite ~axes_left ~can_promote e )
        | S.Assign _ | S.Local _ -> s)
      stmts
  in
  (* explicit parallel loops consume axes *)
  let rec explicit_count stmts =
    List.fold_left
      (fun acc s ->
        match s with
        | S.For l ->
            let here = if S.is_parallel_sched l.S.sched then 1 else 0 in
            acc + here + explicit_count l.S.body
        | S.If (_, t, e) -> acc + explicit_count t + explicit_count e
        | S.Assign _ | S.Local _ -> acc)
      0 stmts
  in
  let axes_left = max 0 (3 - explicit_count r.body) in
  { r with R.body = rewrite ~axes_left ~can_promote:true r.body }

let resolve_program (p : Safara_ir.Program.t) =
  { p with Safara_ir.Program.regions = List.map resolve p.regions }
