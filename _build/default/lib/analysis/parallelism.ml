module S = Safara_ir.Stmt
module E = Safara_ir.Expr

type verdict = Parallel | Serial of string

(* scalar recurrence: a scalar that is read before being (re)defined in
   the body and is also written in the body — unless it is a declared
   reduction or a local declared inside the body (private) *)
let scalar_recurrences (l : S.loop) =
  let reductions = List.map (fun (_, v) -> v.E.vname) l.S.reductions in
  let written = ref [] and read_before_write = ref [] and defined = ref [] in
  let note_read v =
    if
      (not (List.mem v !defined))
      && (not (List.mem v reductions))
      && not (String.equal v l.S.index.E.vname)
      && not (List.mem v !read_before_write)
    then read_before_write := v :: !read_before_write
  in
  let expr_reads e = E.fold_vars (fun v () -> note_read v) e () in
  let rec stmt s =
    match s with
    | S.Assign (S.Lvar v, e) ->
        expr_reads e;
        defined := v.E.vname :: !defined;
        written := v.E.vname :: !written
    | S.Assign (S.Larray (_, subs), e) ->
        List.iter expr_reads subs;
        expr_reads e
    | S.Local (v, init) ->
        Option.iter expr_reads init;
        defined := v.E.vname :: !defined
    | S.For inner ->
        expr_reads inner.S.lo;
        expr_reads inner.S.hi;
        (* conservatively: anything read in an inner loop body before
           its own definition counts *)
        List.iter stmt inner.S.body
    | S.If (c, t, e) ->
        expr_reads c;
        (* writes under a branch do not count as definitions for the
           fall-through path *)
        let saved = !defined in
        List.iter stmt t;
        defined := saved;
        List.iter stmt e;
        defined := saved
  in
  List.iter stmt l.S.body;
  List.filter (fun v -> List.mem v !written) !read_before_write

let analyze_body body =
  let deps = Dependence.region_deps body in
  let results = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | S.For l ->
            let idx = l.S.index.E.vname in
            let carried =
              List.filter
                (fun (d : Dependence.dep) ->
                  (* position of idx in the dep's common nest *)
                  let common =
                    let rec go xs ys =
                      match (xs, ys) with
                      | (x, _) :: xs', (y, _) :: ys' when String.equal x y ->
                          x :: go xs' ys'
                      | _ -> []
                    in
                    go d.Dependence.d_src.Dependence.nest
                      d.Dependence.d_dst.Dependence.nest
                  in
                  match
                    List.find_index (fun x -> String.equal x idx) common
                  with
                  | Some level -> Dependence.carried_at d level
                  | None -> false)
                deps
            in
            let verdict =
              match carried with
              | d :: _ ->
                  Serial
                    (Format.asprintf "loop-carried dependence: %a"
                       Dependence.pp_dep d)
              | [] -> (
                  match scalar_recurrences l with
                  | [] -> Parallel
                  | v :: _ -> Serial (Printf.sprintf "scalar recurrence on %s" v))
            in
            results := (idx, verdict) :: !results;
            walk l.S.body
        | S.If (_, t, e) ->
            walk t;
            walk e
        | S.Assign _ | S.Local _ -> ())
      stmts
  in
  walk body;
  List.rev !results

let loop_parallelizable body idx =
  match List.assoc_opt idx (analyze_body body) with
  | Some Parallel -> true
  | Some (Serial _) | None -> false

let effective_parallel body =
  let verdicts = analyze_body body in
  let results = ref [] in
  let rec walk stmts =
    List.iter
      (fun s ->
        match s with
        | S.For l ->
            let idx = l.S.index.E.vname in
            (if S.is_parallel_sched l.S.sched then results := idx :: !results
             else if l.S.sched = S.Auto then
               match List.assoc_opt idx verdicts with
               | Some Parallel -> results := idx :: !results
               | Some (Serial _) | None -> ());
            walk l.S.body
        | S.If (_, t, e) ->
            walk t;
            walk e
        | S.Assign _ | S.Local _ -> ())
      stmts
  in
  walk body;
  List.rev !results

let pp_verdict ppf = function
  | Parallel -> Format.pp_print_string ppf "parallel"
  | Serial reason -> Format.fprintf ppf "serial (%s)" reason
