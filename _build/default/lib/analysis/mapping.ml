module S = Safara_ir.Stmt
module R = Safara_ir.Region

type axis = X | Y | Z

type mapped_loop = {
  m_index : string;
  m_axis : axis;
  m_vector : int;
  m_gang : int option;
}

type t = { loops : mapped_loop list; block : int * int * int }

let default_vector_x = 128

(* default widths for outer parallel dims when unstated: keep blocks
   flat so the x dimension dominates intra-warp variation *)
let default_vector_outer = 1

let of_region (r : R.t) =
  (* collect parallel loops outermost-first along the (single) nest *)
  let rec collect acc stmts =
    match stmts with
    | [] -> acc
    | s :: rest -> (
        match s with
        | S.For l ->
            let acc' =
              if S.is_parallel_sched l.S.sched then
                (l.S.index.Safara_ir.Expr.vname, l.S.sched) :: acc
              else acc
            in
            collect (collect acc' l.S.body) rest
        | S.If (_, t, e) -> collect (collect (collect acc t) e) rest
        | S.Assign _ | S.Local _ -> collect acc rest)
  in
  let parallel = List.rev (collect [] r.body) in
  (* innermost last in [parallel]; reverse so innermost is first *)
  let innermost_first = List.rev parallel in
  if List.length innermost_first > 3 then
    invalid_arg
      (Printf.sprintf "region %s: more than three nested parallel loops"
         r.rname);
  let axis_of_pos = function 0 -> X | 1 -> Y | _ -> Z in
  let loops =
    List.mapi
      (fun pos (idx, sched) ->
        let gang, vector =
          match sched with
          | S.Gang g -> (g, Some default_vector_outer)
          | S.Vector v -> (None, v)
          | S.Gang_vector (g, v) -> (g, v)
          | S.Seq | S.Auto -> (None, None)
        in
        let vector =
          match vector with
          | Some v -> v
          | None -> if pos = 0 then default_vector_x else default_vector_outer
        in
        { m_index = idx; m_axis = axis_of_pos pos; m_vector = vector; m_gang = gang })
      innermost_first
  in
  let dim axis =
    match List.find_opt (fun m -> m.m_axis = axis) loops with
    | Some m -> m.m_vector
    | None -> 1
  in
  { loops; block = (dim X, dim Y, dim Z) }

let x_index t =
  List.find_opt (fun m -> m.m_axis = X) t.loops |> Option.map (fun m -> m.m_index)

let vector_of t idx =
  List.find_opt (fun m -> String.equal m.m_index idx) t.loops
  |> Option.map (fun m -> m.m_vector)

let axis_to_string = function X -> "x" | Y -> "y" | Z -> "z"

let pp ppf t =
  let x, y, z = t.block in
  Format.fprintf ppf "block(%d,%d,%d):" x y z;
  List.iter
    (fun m ->
      Format.fprintf ppf " %s->%s(v=%d)" m.m_index (axis_to_string m.m_axis)
        m.m_vector)
    t.loops
