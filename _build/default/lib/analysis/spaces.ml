module M = Safara_gpu.Memspace

let space_of_array ~arch (r : Safara_ir.Region.t) (a : Safara_ir.Array_info.t) =
  let read_only_here =
    List.mem a.Safara_ir.Array_info.name (Safara_ir.Region.read_only_arrays r)
  in
  if
    arch.Safara_gpu.Arch.has_read_only_cache && read_only_here
    && a.Safara_ir.Array_info.intent <> Safara_ir.Array_info.Copy_out
  then M.Read_only
  else M.Global

let region_spaces ~arch (p : Safara_ir.Program.t) (r : Safara_ir.Region.t) =
  List.map
    (fun name ->
      (name, space_of_array ~arch r (Safara_ir.Program.find_array p name)))
    (Safara_ir.Region.referenced_arrays r)
