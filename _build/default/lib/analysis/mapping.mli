(** Thread-topology mapping of an offload region's loop nest.

    Follows the OpenUH convention visible in the paper's Fig 8: the
    {e innermost} parallel loop is distributed across the x dimension
    of the grid (so consecutive [threadIdx.x] values take consecutive
    iterations), the next enclosing parallel loop across y, then z.
    Unscheduled ([Auto]) loops must have been resolved by
    {!Schedule.resolve} before mapping. *)

type axis = X | Y | Z

type mapped_loop = {
  m_index : string;  (** loop index name *)
  m_axis : axis;
  m_vector : int;  (** block-dimension extent along this axis *)
  m_gang : int option;  (** grid-dimension extent if stated in the clause *)
}

type t = {
  loops : mapped_loop list;  (** innermost (X) first *)
  block : int * int * int;  (** block dimensions (x, y, z) *)
}

val default_vector_x : int
(** Default vector length for the innermost parallel loop when the
    directive gives none (128, the OpenUH default). *)

val of_region : Safara_ir.Region.t -> t
(** @raise Invalid_argument if more than three parallel loops are
    nested (the hardware has three grid dimensions). *)

val x_index : t -> string option
(** Index name of the loop mapped to the x axis: the one whose
    variation is the within-warp lane variation, which drives
    coalescing. *)

val vector_of : t -> string -> int option
val axis_to_string : axis -> string
val pp : Format.formatter -> t -> unit
