(** Warp-level memory-access pattern classification, after the
    mathematical model of Jang et al. (IEEE TPDS 2011) cited by the
    paper (§III.B.1).

    Given the thread mapping of a region, each array reference is
    classified by how the 32 lanes of one warp spread over memory:
    - the innermost (x) loop index appears with coefficient 1 in the
      fastest-varying subscript and nowhere else → {e coalesced};
    - it appears with a larger stride, or lanes span multiple rows →
      {e uncoalesced}, with an estimated transaction count;
    - no subscript depends on it → {e invariant} (broadcast). *)

val classify :
  mapping:Mapping.t ->
  warp_size:int ->
  segment_bytes:int ->
  elem_bytes:int ->
  Safara_ir.Expr.t list ->
  Safara_gpu.Memspace.access
(** [classify ~mapping ~warp_size ~segment_bytes ~elem_bytes subs]
    classifies a reference with subscripts [subs] (outermost dimension
    first, row-major). *)

val classify_in_region :
  arch:Safara_gpu.Arch.t ->
  elem:(string -> Safara_ir.Types.dtype) ->
  Safara_ir.Region.t ->
  ((string * Safara_ir.Expr.t list) * Safara_gpu.Memspace.access) list
(** Classification of every distinct (array, subscript) reference of a
    schedule-resolved region. *)
