module E = Safara_ir.Expr
module M = Safara_gpu.Memspace

let cdiv a b = (a + b - 1) / b

let classify ~mapping ~warp_size ~segment_bytes ~elem_bytes subs =
  match Mapping.x_index mapping with
  | None ->
      (* fully sequential kernel body: a single thread, every access is
         a single transaction *)
      M.Invariant
  | Some x ->
      let vx = Option.value (Mapping.vector_of mapping x) ~default:warp_size in
      (* lanes of one warp cover [lanes_x = min vx warp] consecutive x
         iterations; remaining lane variation spills into the y loop *)
      let lanes_x = max 1 (min vx warp_size) in
      let forms = List.map (Affine.analyze ~indices:[ x ]) subs in
      let rec last_and_init = function
        | [] -> (None, [])
        | [ l ] -> (Some l, [])
        | h :: t ->
            let l, init = last_and_init t in
            (l, h :: init)
      in
      let last, outer = last_and_init forms in
      let outer_depends =
        List.exists
          (function Some f -> Affine.depends_on f x | None -> true)
          outer
      in
      if outer_depends then
        (* each lane lands on a different row: fully scattered *)
        M.Uncoalesced warp_size
      else
        let stride =
          match last with
          | Some (Some f) -> Some (Affine.coeff f x)
          | Some None -> None
          | None -> Some 0
        in
        let row_groups = max 1 (warp_size / lanes_x) in
        (match stride with
        | None -> M.Uncoalesced warp_size
        | Some 0 ->
            if row_groups = 1 then M.Invariant
            else if
              (* x-invariant but the warp spans several y rows: one
                 transaction per row group *)
              row_groups >= warp_size
            then M.Invariant
            else M.Uncoalesced row_groups
        | Some stride ->
            let stride = abs stride in
            let bytes_per_group = lanes_x * stride * elem_bytes in
            let txn_per_group =
              if stride = 1 then cdiv (lanes_x * elem_bytes) segment_bytes
              else min lanes_x (cdiv bytes_per_group segment_bytes)
            in
            let total = row_groups * max 1 txn_per_group in
            if stride = 1 && row_groups = 1 then M.Coalesced
            else if total <= 1 then M.Coalesced
            else M.Uncoalesced (min warp_size total))

let classify_in_region ~arch ~elem (r : Safara_ir.Region.t) =
  let mapping = Mapping.of_region r in
  let refs = Dependence.collect_refs r.Safara_ir.Region.body in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Dependence.aref) ->
      let key = (a.Dependence.array, a.Dependence.subs) in
      if Hashtbl.mem seen key then None
      else (
        Hashtbl.add seen key ();
        let elem_bytes = Safara_ir.Types.size_bytes (elem a.Dependence.array) in
        let access =
          classify ~mapping ~warp_size:arch.Safara_gpu.Arch.warp_size
            ~segment_bytes:arch.Safara_gpu.Arch.mem_segment_bytes ~elem_bytes
            a.Dependence.subs
        in
        Some (key, access)))
    refs
