lib/analysis/parallelism.ml: Dependence Format List Option Printf Safara_ir String
