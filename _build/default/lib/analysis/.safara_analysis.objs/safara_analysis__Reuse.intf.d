lib/analysis/reuse.mli: Dependence Format Safara_gpu Safara_ir
