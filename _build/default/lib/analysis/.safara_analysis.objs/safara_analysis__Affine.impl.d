lib/analysis/affine.ml: Format List Option Printf Safara_ir String
