lib/analysis/schedule.ml: List Parallelism Safara_ir
