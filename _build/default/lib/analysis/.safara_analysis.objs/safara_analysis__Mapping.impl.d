lib/analysis/mapping.ml: Format List Option Printf Safara_ir String
