lib/analysis/spaces.mli: Safara_gpu Safara_ir
