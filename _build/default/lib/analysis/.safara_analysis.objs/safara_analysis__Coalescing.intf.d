lib/analysis/coalescing.mli: Mapping Safara_gpu Safara_ir
