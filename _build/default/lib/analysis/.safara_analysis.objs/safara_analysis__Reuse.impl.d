lib/analysis/reuse.ml: Affine Coalescing Dependence Format Hashtbl List Mapping Option Printf Safara_gpu Safara_ir Spaces String
