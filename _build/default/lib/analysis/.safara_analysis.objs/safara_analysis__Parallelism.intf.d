lib/analysis/parallelism.mli: Format Safara_ir
