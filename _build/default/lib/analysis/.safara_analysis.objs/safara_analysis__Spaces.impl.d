lib/analysis/spaces.ml: List Safara_gpu Safara_ir
