lib/analysis/dependence.mli: Format Safara_ir
