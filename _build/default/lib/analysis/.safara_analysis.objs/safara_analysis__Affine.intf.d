lib/analysis/affine.mli: Format Safara_ir
