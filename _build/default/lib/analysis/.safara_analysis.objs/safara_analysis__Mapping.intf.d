lib/analysis/mapping.mli: Format Safara_ir
