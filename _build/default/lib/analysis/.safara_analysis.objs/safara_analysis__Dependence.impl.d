lib/analysis/dependence.ml: Affine Format Hashtbl List Option Safara_ir String
