lib/analysis/coalescing.ml: Affine Dependence Hashtbl List Mapping Option Safara_gpu Safara_ir
