lib/analysis/schedule.mli: Safara_ir
