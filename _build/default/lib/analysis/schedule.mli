(** Resolution of [Auto] loop schedules.

    Models the OpenACC construct semantics: under [kernels] the
    compiler decides — the outermost chain of [Auto] loops that the
    dependence analysis proves parallelizable is promoted to
    [Gang_vector]; under [parallel] an undirected loop is
    user-asserted independent and promoted without proof. Every other
    [Auto] loop becomes [Seq]. Explicit schedules are left untouched.
    After resolution every loop is either parallel or [Seq], which is
    the precondition of {!Mapping.of_region} and of code
    generation. *)

val resolve : Safara_ir.Region.t -> Safara_ir.Region.t

val resolve_program : Safara_ir.Program.t -> Safara_ir.Program.t
