module E = Safara_ir.Expr

type t = {
  coeffs : (string * int) list;
  const : int;
  rest : E.t option;
}

(* internal working form: index coefficients, constant, and a list of
   (loop-invariant atom, coefficient) additive terms *)
type work = { w_coeffs : (string * int) list; w_const : int; w_terms : (E.t * int) list }

let w_zero = { w_coeffs = []; w_const = 0; w_terms = [] }

let add_assoc key v alist =
  let rec go = function
    | [] -> [ (key, v) ]
    | (k, x) :: rest when k = key -> (k, x + v) :: rest
    | kv :: rest -> kv :: go rest
  in
  go alist

let w_add a b =
  {
    w_coeffs = List.fold_left (fun acc (k, v) -> add_assoc k v acc) a.w_coeffs b.w_coeffs;
    w_const = a.w_const + b.w_const;
    w_terms =
      List.fold_left (fun acc (t, v) ->
        let rec go = function
          | [] -> [ (t, v) ]
          | (t', x) :: rest when E.equal t' t -> (t', x + v) :: rest
          | tv :: rest -> tv :: go rest
        in
        go acc) a.w_terms b.w_terms;
  }

let w_scale s a =
  {
    w_coeffs = List.map (fun (k, v) -> (k, v * s)) a.w_coeffs;
    w_const = a.w_const * s;
    w_terms = List.map (fun (t, v) -> (t, v * s)) a.w_terms;
  }

let is_const w = w.w_coeffs = [] && w.w_terms = []
let has_index w = List.exists (fun (_, v) -> v <> 0) w.w_coeffs

(* an expression mentions none of the indices *)
let index_free ~indices e =
  not (E.fold_vars (fun v acc -> acc || List.mem v indices) e false)

(* loads and calls may vary between iterations even if index-free, so
   they disqualify the whole subscript *)
let rec pure = function
  | E.Int_lit _ | E.Float_lit _ | E.Var _ -> true
  | E.Load _ -> false
  | E.Call _ -> false
  | E.Binop (_, a, b) -> pure a && pure b
  | E.Unop (_, a) | E.Cast (_, a) -> pure a

exception Not_affine

let rec analyze_work ~indices (e : E.t) : work =
  match e with
  | E.Int_lit (n, _) -> { w_zero with w_const = n }
  | E.Float_lit _ -> raise Not_affine
  | E.Var { E.vname; _ } ->
      if List.mem vname indices then { w_zero with w_coeffs = [ (vname, 1) ] }
      else { w_zero with w_terms = [ (e, 1) ] }
  | E.Binop (E.Add, a, b) ->
      w_add (analyze_work ~indices a) (analyze_work ~indices b)
  | E.Binop (E.Sub, a, b) ->
      w_add (analyze_work ~indices a) (w_scale (-1) (analyze_work ~indices b))
  | E.Binop (E.Mul, a, b) -> (
      let wa = analyze_work ~indices a and wb = analyze_work ~indices b in
      match (is_const wa, is_const wb) with
      | true, _ -> w_scale wa.w_const wb
      | _, true -> w_scale wb.w_const wa
      | false, false ->
          if (not (has_index wa)) && not (has_index wb) && pure e then
            { w_zero with w_terms = [ (e, 1) ] }
          else raise Not_affine)
  | E.Binop ((E.Div | E.Mod | E.Min | E.Max), _, _) ->
      if index_free ~indices e && pure e then { w_zero with w_terms = [ (e, 1) ] }
      else raise Not_affine
  | E.Binop ((E.Eq | E.Ne | E.Lt | E.Le | E.Gt | E.Ge | E.And | E.Or), _, _) ->
      raise Not_affine
  | E.Unop (E.Neg, a) -> w_scale (-1) (analyze_work ~indices a)
  | E.Unop (E.Not, _) -> raise Not_affine
  | E.Cast (ty, a) when Safara_ir.Types.is_integer ty -> analyze_work ~indices a
  | E.Cast _ -> raise Not_affine
  | E.Load _ | E.Call _ -> raise Not_affine

let canonical_rest terms =
  let terms = List.filter (fun (_, v) -> v <> 0) terms in
  let terms =
    List.sort (fun (a, _) (b, _) -> compare (E.to_string a) (E.to_string b)) terms
  in
  match terms with
  | [] -> None
  | _ ->
      let term (e, v) =
        if v = 1 then e
        else if v = -1 then E.Unop (E.Neg, e)
        else E.Binop (E.Mul, E.int v, e)
      in
      let rec build = function
        | [] -> assert false
        | [ t ] -> term t
        | t :: rest -> E.Binop (E.Add, term t, build rest)
      in
      Some (build terms)

let analyze ~indices e =
  match analyze_work ~indices e with
  | exception Not_affine -> None
  | w ->
      let coeffs =
        List.filter (fun (_, v) -> v <> 0) w.w_coeffs
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Some { coeffs; const = w.w_const; rest = canonical_rest w.w_terms }

let coeff t name = Option.value (List.assoc_opt name t.coeffs) ~default:0
let depends_on t name = coeff t name <> 0

let comparable a b =
  a.coeffs = b.coeffs
  &&
  match (a.rest, b.rest) with
  | None, None -> true
  | Some x, Some y -> E.equal x y
  | None, Some _ | Some _, None -> false

let distance a b = if comparable a b then Some (b.const - a.const) else None

let equal a b = comparable a b && a.const = b.const

let pp ppf t =
  let parts =
    List.map (fun (k, v) -> Printf.sprintf "%d*%s" v k) t.coeffs
    @ (match t.rest with None -> [] | Some e -> [ E.to_string e ])
    @ (if t.const <> 0 || (t.coeffs = [] && t.rest = None) then
         [ string_of_int t.const ]
       else [])
  in
  Format.pp_print_string ppf (String.concat " + " parts)
