(** IR expressions.

    Expressions are explicitly typed at the leaves (variables carry
    their type; literals are tagged); {!typeof} recovers the type of
    any node given the array element-type environment. *)

type var = { vname : string; vtype : Types.dtype }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type intrinsic = Sqrt | Exp | Log | Sin | Cos | Fabs | Pow | Floor

type t =
  | Int_lit of int * Types.dtype
  | Float_lit of float * Types.dtype
  | Var of var
  | Load of string * t list  (** array name, subscript list (row-major) *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Call of intrinsic * t list
  | Cast of Types.dtype * t

val var : ?ty:Types.dtype -> string -> t
(** Integer variable reference by default ([ty] defaults to [I32]). *)

val int : int -> t

val float : float -> t
(** An [F64] literal. *)

val float32 : float -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( = ) : t -> t -> t

val load : string -> t list -> t

val typeof : elem:(string -> Types.dtype) -> t -> Types.dtype
(** Type of an expression; [elem] maps array names to element types.
    Comparison and logical operators yield [Bool]; arithmetic joins
    operand types. *)

val is_comparison : binop -> bool
val fold_vars : (string -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all scalar-variable names occurring in the expression
    (not array names). *)

val arrays_used : t -> string list
(** Array names loaded anywhere in the expression, with duplicates. *)

val subst_var : string -> t -> t -> t
(** [subst_var x e' e] replaces every occurrence of variable [x] in
    [e] with [e']. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_var : Format.formatter -> var -> unit
val binop_to_string : binop -> string
val intrinsic_to_string : intrinsic -> string
