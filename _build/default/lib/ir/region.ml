type kind = Kernels | Parallel

type dim_group = { stated_dims : Dim.t list option; group_arrays : string list }

type t = {
  rname : string;
  kind : kind;
  body : Stmt.t list;
  dim_groups : dim_group list;
  small : string list;
}

let make ?(kind = Kernels) ?(dim_groups = []) ?(small = []) rname body =
  { rname; kind; body; dim_groups; small }

let dim_group_of t name =
  let rec find i = function
    | [] -> None
    | g :: rest -> if List.mem name g.group_arrays then Some i else find (i + 1) rest
  in
  find 0 t.dim_groups

let is_small t name = List.mem name t.small

let dedup names =
  List.rev
    (List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] names)

let referenced_arrays t =
  let reads = Stmt.loads t.body |> List.map fst in
  let writes = Stmt.stores t.body |> List.map fst in
  dedup (reads @ writes)

let read_only_arrays t =
  let written = Stmt.stored_arrays t.body in
  List.filter (fun a -> not (List.mem a written)) (referenced_arrays t)

let weight t =
  let n = ref 0 in
  Stmt.iter (fun _ -> incr n) t.body;
  !n

let kind_to_string = function Kernels -> "kernels" | Parallel -> "parallel"

let pp_dim_group ppf g =
  (match g.stated_dims with
  | None -> ()
  | Some dims -> List.iter (Dim.pp ppf) dims);
  Format.fprintf ppf "(%s)" (String.concat ", " g.group_arrays)

let pp ppf t =
  Format.fprintf ppf "@[<v>// kernel %s@,#pragma acc %s" t.rname
    (kind_to_string t.kind);
  if t.dim_groups <> [] then (
    Format.fprintf ppf " dim(";
    List.iteri
      (fun i g ->
        if i > 0 then Format.fprintf ppf ", ";
        pp_dim_group ppf g)
      t.dim_groups;
    Format.fprintf ppf ")");
  if t.small <> [] then
    Format.fprintf ppf " small(%s)" (String.concat ", " t.small);
  Format.fprintf ppf "@,@[<v 2>{@,%a@]@,}@]" Stmt.pp_body t.body
