(** Scalar data types of the MiniACC IR.

    The 32/64-bit distinction matters throughout the reproduction: GPU
    general-purpose registers are 32 bits wide, so a 64-bit scalar
    occupies two consecutive registers (paper §IV.B) — this is what
    the [small] clause saves. *)

type dtype = I32 | I64 | F32 | F64 | Bool

val size_bytes : dtype -> int
(** In-memory size: 4 for I32/F32/Bool, 8 for I64/F64. *)

val registers : dtype -> int
(** Number of 32-bit GPU registers a value of this type occupies. *)

val is_float : dtype -> bool
val is_integer : dtype -> bool
val is_64bit : dtype -> bool
val equal : dtype -> dtype -> bool
val to_string : dtype -> string
val pp : Format.formatter -> dtype -> unit

val join : dtype -> dtype -> dtype
(** Usual arithmetic-conversion join: the wider / more-float type. *)
