(** Array dimension descriptors (dope-vector entries).

    A dimension has a lower bound and an extent, each either a
    compile-time constant or a symbolic reference to a scalar program
    parameter. Arrays whose dimensions are all constant are "static":
    the compiler folds their offset arithmetic and no dope-vector
    temporaries are needed. Arrays with any symbolic dimension model
    Fortran allocatables / C VLAs: their bounds live in a dope vector
    and each use costs compiler-generated temporaries — the registers
    the paper's [dim] clause recovers (§IV.A). *)

type bound = Const of int | Sym of string

type t = { lower : bound; extent : bound }

val const : ?lower:int -> int -> t
(** [const n] is a static dimension [lower..lower+n-1] (default lower
    bound 0, the C convention). *)

val dyn : ?lower:bound -> string -> t
(** [dyn n] is a dynamic dimension whose extent is the scalar
    parameter named [n]. *)

val is_static : t -> bool
val equal_bound : bound -> bound -> bool

val equal : t -> t -> bool
(** Structural equality of bounds — the condition under which two
    arrays "share the same dimensions" for the [dim] clause. *)

val pp_bound : Format.formatter -> bound -> unit
val pp : Format.formatter -> t -> unit
