type bound = Const of int | Sym of string

type t = { lower : bound; extent : bound }

let const ?(lower = 0) n = { lower = Const lower; extent = Const n }
let dyn ?(lower = Const 0) n = { lower; extent = Sym n }

let is_static { lower; extent } =
  match (lower, extent) with Const _, Const _ -> true | _ -> false

let equal_bound a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Sym x, Sym y -> String.equal x y
  | Const _, Sym _ | Sym _, Const _ -> false

let equal a b = equal_bound a.lower b.lower && equal_bound a.extent b.extent

let pp_bound ppf = function
  | Const n -> Format.pp_print_int ppf n
  | Sym s -> Format.pp_print_string ppf s

let pp ppf { lower; extent } =
  match lower with
  | Const 0 -> Format.fprintf ppf "[%a]" pp_bound extent
  | _ -> Format.fprintf ppf "[%a:%a]" pp_bound lower pp_bound extent
