type lvalue = Lvar of Expr.var | Larray of string * Expr.t list

type sched =
  | Seq
  | Auto
  | Gang of int option
  | Vector of int option
  | Gang_vector of int option * int option

type redop = Rplus | Rmul | Rmin | Rmax

type t =
  | Assign of lvalue * Expr.t
  | Local of Expr.var * Expr.t option
  | For of loop
  | If of Expr.t * t list * t list

and loop = {
  index : Expr.var;
  lo : Expr.t;
  hi : Expr.t;
  sched : sched;
  reductions : (redop * Expr.var) list;
  body : t list;
}

let assign a subs e = Assign (Larray (a, subs), e)

let assign_var ?(ty = Types.F64) name e =
  Assign (Lvar { Expr.vname = name; vtype = ty }, e)

let for_ ?(sched = Auto) ?(reductions = []) i lo hi body =
  For { index = { Expr.vname = i; vtype = Types.I32 }; lo; hi; sched; reductions; body }

let is_parallel_sched = function
  | Gang _ | Vector _ | Gang_vector _ -> true
  | Seq | Auto -> false

let rec iter f stmts =
  List.iter
    (fun s ->
      f s;
      match s with
      | For l -> iter f l.body
      | If (_, t, e) ->
          iter f t;
          iter f e
      | Assign _ | Local _ -> ())
    stmts

let rec expr_loads (e : Expr.t) =
  match e with
  | Expr.Int_lit _ | Float_lit _ | Var _ -> []
  | Load (a, subs) -> ((a, subs) :: List.concat_map expr_loads subs)
  | Binop (_, x, y) -> expr_loads x @ expr_loads y
  | Unop (_, x) | Cast (_, x) -> expr_loads x
  | Call (_, args) -> List.concat_map expr_loads args

let loads stmts =
  let acc = ref [] in
  let add l = acc := List.rev_append l !acc in
  iter
    (fun s ->
      match s with
      | Assign (Larray (_, subs), e) ->
          add (List.concat_map expr_loads subs);
          add (expr_loads e)
      | Assign (Lvar _, e) -> add (expr_loads e)
      | Local (_, Some e) -> add (expr_loads e)
      | Local (_, None) -> ()
      | For l ->
          add (expr_loads l.lo);
          add (expr_loads l.hi)
      | If (c, _, _) -> add (expr_loads c))
    stmts;
  List.rev !acc

let stores stmts =
  let acc = ref [] in
  iter
    (fun s ->
      match s with
      | Assign (Larray (a, subs), _) -> acc := (a, subs) :: !acc
      | Assign (Lvar _, _) | Local _ | For _ | If _ -> ())
    stmts;
  List.rev !acc

let stored_arrays stmts =
  let names = stores stmts |> List.map fst in
  List.fold_left (fun acc n -> if List.mem n acc then acc else n :: acc) [] names
  |> List.rev

let scalars_read stmts =
  let add name acc = if List.mem name acc then acc else name :: acc in
  let acc = ref [] in
  let of_expr e = acc := Expr.fold_vars add e !acc in
  iter
    (fun s ->
      match s with
      | Assign (Larray (_, subs), e) ->
          List.iter of_expr subs;
          of_expr e
      | Assign (Lvar _, e) -> of_expr e
      | Local (_, Some e) -> of_expr e
      | Local (_, None) -> ()
      | For l ->
          of_expr l.lo;
          of_expr l.hi
      | If (c, _, _) -> of_expr c)
    stmts;
  List.rev !acc

let rec map_exprs f stmts =
  let stmt = function
    | Assign (Larray (a, subs), e) -> Assign (Larray (a, List.map f subs), f e)
    | Assign (Lvar v, e) -> Assign (Lvar v, f e)
    | Local (v, init) -> Local (v, Option.map f init)
    | For l ->
        For { l with lo = f l.lo; hi = f l.hi; body = map_exprs f l.body }
    | If (c, t, e) -> If (f c, map_exprs f t, map_exprs f e)
  in
  List.map stmt stmts

let rec loop_depth stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | For l -> max acc (1 + loop_depth l.body)
      | If (_, t, e) -> max acc (max (loop_depth t) (loop_depth e))
      | Assign _ | Local _ -> acc)
    0 stmts

let redop_to_string = function
  | Rplus -> "+"
  | Rmul -> "*"
  | Rmin -> "min"
  | Rmax -> "max"

let pp_sched ppf = function
  | Seq -> Format.pp_print_string ppf "seq"
  | Auto -> Format.pp_print_string ppf "auto"
  | Gang None -> Format.pp_print_string ppf "gang"
  | Gang (Some n) -> Format.fprintf ppf "gang(%d)" n
  | Vector None -> Format.pp_print_string ppf "vector"
  | Vector (Some n) -> Format.fprintf ppf "vector(%d)" n
  | Gang_vector (g, v) ->
      let opt ppf = function
        | None -> ()
        | Some n -> Format.fprintf ppf "(%d)" n
      in
      Format.fprintf ppf "gang%a vector%a" opt g opt v

let rec pp ppf = function
  | Assign (Lvar v, e) -> Format.fprintf ppf "@[<2>%s = %a;@]" v.Expr.vname Expr.pp e
  | Assign (Larray (a, subs), e) ->
      Format.fprintf ppf "@[<2>%s%a = %a;@]" a pp_subs subs Expr.pp e
  | Local (v, None) -> Format.fprintf ppf "%a;" Expr.pp_var v
  | Local (v, Some e) -> Format.fprintf ppf "@[<2>%a = %a;@]" Expr.pp_var v Expr.pp e
  | For l ->
      if l.sched <> Auto then
        Format.fprintf ppf "#pragma acc loop %a@," pp_sched l.sched;
      List.iter
        (fun (op, v) ->
          Format.fprintf ppf "// reduction(%s:%s)@," (redop_to_string op)
            v.Expr.vname)
        l.reductions;
      Format.fprintf ppf "@[<v 2>for (%s = %a; %s <= %a; %s++) {@,%a@]@,}"
        l.index.Expr.vname Expr.pp l.lo l.index.Expr.vname Expr.pp l.hi
        l.index.Expr.vname pp_body l.body
  | If (c, t, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" Expr.pp c pp_body t
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        Expr.pp c pp_body t pp_body e

and pp_subs ppf subs = List.iter (fun s -> Format.fprintf ppf "[%a]" Expr.pp s) subs

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp ppf stmts
