(** A whole MiniACC program: scalar parameters, array declarations and
    a sequence of offload regions. Host-side control between regions
    is limited to repeating the region sequence (time-step loops),
    which is what the benchmarks need. *)

type t = {
  pname : string;
  params : Expr.var list;  (** scalar inputs (problem sizes, constants) *)
  arrays : Array_info.t list;
  regions : Region.t list;
}

val make : ?params:Expr.var list -> ?arrays:Array_info.t list ->
  string -> Region.t list -> t

val find_array : t -> string -> Array_info.t
(** @raise Not_found if the name is not declared. *)

val find_array_opt : t -> string -> Array_info.t option
val find_region : t -> string -> Region.t
val elem_type : t -> string -> Types.dtype
val param_names : t -> string list
val pp : Format.formatter -> t -> unit
