type var = { vname : string; vtype : Types.dtype }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Min
  | Max
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop = Neg | Not

type intrinsic = Sqrt | Exp | Log | Sin | Cos | Fabs | Pow | Floor

type t =
  | Int_lit of int * Types.dtype
  | Float_lit of float * Types.dtype
  | Var of var
  | Load of string * t list
  | Binop of binop * t * t
  | Unop of unop * t
  | Call of intrinsic * t list
  | Cast of Types.dtype * t

let var ?(ty = Types.I32) name = Var { vname = name; vtype = ty }
let int n = Int_lit (n, Types.I32)
let float f = Float_lit (f, Types.F64)
let float32 f = Float_lit (f, Types.F32)

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( = ) a b = Binop (Eq, a, b)

let load name subs = Load (name, subs)

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Mod | Min | Max | And | Or -> false

let rec typeof ~elem e =
  match e with
  | Int_lit (_, ty) | Float_lit (_, ty) -> ty
  | Var v -> v.vtype
  | Load (a, _) -> elem a
  | Binop (op, a, b) ->
      if is_comparison op then Types.Bool
      else if Stdlib.( = ) op And || Stdlib.( = ) op Or then Types.Bool
      else Types.join (typeof ~elem a) (typeof ~elem b)
  | Unop (Neg, a) -> typeof ~elem a
  | Unop (Not, _) -> Types.Bool
  | Call (Floor, _) -> Types.F64
  | Call (_, args) ->
      List.fold_left
        (fun acc a -> Types.join acc (typeof ~elem a))
        Types.F32 args
  | Cast (ty, _) -> ty

let rec fold_vars f e acc =
  match e with
  | Int_lit _ | Float_lit _ -> acc
  | Var v -> f v.vname acc
  | Load (_, subs) -> List.fold_left (fun acc s -> fold_vars f s acc) acc subs
  | Binop (_, a, b) -> fold_vars f b (fold_vars f a acc)
  | Unop (_, a) | Cast (_, a) -> fold_vars f a acc
  | Call (_, args) -> List.fold_left (fun acc a -> fold_vars f a acc) acc args

let rec arrays_used = function
  | Int_lit _ | Float_lit _ | Var _ -> []
  | Load (a, subs) -> a :: List.concat_map arrays_used subs
  | Binop (_, a, b) -> arrays_used a @ arrays_used b
  | Unop (_, a) | Cast (_, a) -> arrays_used a
  | Call (_, args) -> List.concat_map arrays_used args

let rec subst_var x e' e =
  match e with
  | Var v when String.equal v.vname x -> e'
  | Int_lit _ | Float_lit _ | Var _ -> e
  | Load (a, subs) -> Load (a, List.map (subst_var x e') subs)
  | Binop (op, a, b) -> Binop (op, subst_var x e' a, subst_var x e' b)
  | Unop (op, a) -> Unop (op, subst_var x e' a)
  | Call (i, args) -> Call (i, List.map (subst_var x e') args)
  | Cast (ty, a) -> Cast (ty, subst_var x e' a)

let equal (a : t) (b : t) = Stdlib.( = ) a b
let compare (a : t) (b : t) = Stdlib.compare a b

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let intrinsic_to_string = function
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Fabs -> "fabs"
  | Pow -> "pow"
  | Floor -> "floor"

let rec pp ppf = function
  | Int_lit (n, Types.I64) -> Format.fprintf ppf "%dL" n
  | Int_lit (n, _) -> Format.pp_print_int ppf n
  | Float_lit (f, Types.F32) -> Format.fprintf ppf "%gf" f
  | Float_lit (f, _) -> Format.fprintf ppf "%g" f
  | Var v -> Format.pp_print_string ppf v.vname
  | Load (a, subs) ->
      Format.pp_print_string ppf a;
      List.iter (fun s -> Format.fprintf ppf "[%a]" pp s) subs
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_to_string op) pp a pp b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_to_string op) pp b
  | Unop (Neg, a) -> Format.fprintf ppf "(-%a)" pp a
  | Unop (Not, a) -> Format.fprintf ppf "(!%a)" pp a
  | Call (i, args) ->
      Format.fprintf ppf "%s(%a)" (intrinsic_to_string i)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        args
  | Cast (ty, a) -> Format.fprintf ppf "(%a)%a" Types.pp ty pp a

let to_string e = Format.asprintf "%a" pp e
let pp_var ppf v = Format.fprintf ppf "%a %s" Types.pp v.vtype v.vname
