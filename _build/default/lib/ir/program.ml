type t = {
  pname : string;
  params : Expr.var list;
  arrays : Array_info.t list;
  regions : Region.t list;
}

let make ?(params = []) ?(arrays = []) pname regions =
  { pname; params; arrays; regions }

let find_array_opt t name =
  List.find_opt (fun (a : Array_info.t) -> String.equal a.name name) t.arrays

let find_array t name =
  match find_array_opt t name with Some a -> a | None -> raise Not_found

let find_region t name =
  List.find (fun (r : Region.t) -> String.equal r.rname name) t.regions

let elem_type t name = (find_array t name).elem

let param_names t = List.map (fun (v : Expr.var) -> v.Expr.vname) t.params

let pp ppf t =
  Format.fprintf ppf "@[<v>// program %s@,%a@,%a@,@,%a@]" t.pname
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf v ->
         Format.fprintf ppf "param %a;" Expr.pp_var v))
    t.params
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Array_info.pp)
    t.arrays
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Region.pp)
    t.regions
