lib/ir/dim.ml: Format String
