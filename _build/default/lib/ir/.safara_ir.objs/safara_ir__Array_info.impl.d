lib/ir/array_info.ml: Dim Format List Types
