lib/ir/program.mli: Array_info Expr Format Region Types
