lib/ir/dim.mli: Format
