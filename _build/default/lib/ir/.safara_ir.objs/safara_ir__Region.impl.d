lib/ir/region.ml: Dim Format List Stmt String
