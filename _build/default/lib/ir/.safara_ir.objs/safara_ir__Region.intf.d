lib/ir/region.mli: Dim Format Stmt
