lib/ir/array_info.mli: Dim Format Types
