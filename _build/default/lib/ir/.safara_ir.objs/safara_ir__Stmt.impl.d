lib/ir/stmt.ml: Expr Format List Option Types
