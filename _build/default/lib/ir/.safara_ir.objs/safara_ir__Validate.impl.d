lib/ir/validate.ml: Array_info Dim Expr Format Hashtbl List Option Program Region Stmt Types
