lib/ir/program.ml: Array_info Expr Format List Region String
