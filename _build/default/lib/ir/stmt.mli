(** IR statements and loops.

    Loops are kept in OpenACC canonical form: an integer induction
    variable running from [lo] to [hi] inclusive with unit step. The
    [sched] field records the loop-distribution directive ([gang],
    [vector], [seq], …), which the code generator maps onto the
    CUDA-style grid/block geometry. *)

type lvalue = Lvar of Expr.var | Larray of string * Expr.t list

type sched =
  | Seq  (** explicitly sequential ([loop seq]) *)
  | Auto  (** no directive: the compiler decides *)
  | Gang of int option  (** distribute across thread blocks *)
  | Vector of int option  (** distribute across threads in a block *)
  | Gang_vector of int option * int option
      (** [loop gang(G) vector(V)]: both levels at once *)

type redop = Rplus | Rmul | Rmin | Rmax

type t =
  | Assign of lvalue * Expr.t
  | Local of Expr.var * Expr.t option
      (** kernel-local scalar declaration with optional initializer *)
  | For of loop
  | If of Expr.t * t list * t list

and loop = {
  index : Expr.var;
  lo : Expr.t;
  hi : Expr.t;  (** inclusive *)
  sched : sched;
  reductions : (redop * Expr.var) list;
  body : t list;
}

val assign : string -> Expr.t list -> Expr.t -> t
(** [assign a subs e] is [a\[subs…\] = e]. *)

val assign_var : ?ty:Types.dtype -> string -> Expr.t -> t

val for_ : ?sched:sched -> ?reductions:(redop * Expr.var) list ->
  string -> Expr.t -> Expr.t -> t list -> t
(** [for_ i lo hi body] builds a canonical loop over [I32] index [i]. *)

val is_parallel_sched : sched -> bool
(** True when the directive distributes iterations across threads
    (gang and/or vector) — the loops in which inter-iteration scalar
    replacement must not be applied (paper §III.A.1). *)

val iter : (t -> unit) -> t list -> unit
(** Pre-order traversal of a statement forest, descending into loop
    and branch bodies. *)

val loads : t list -> (string * Expr.t list) list
(** All array reads in evaluation order (including subscripts of
    stores). *)

val stores : t list -> (string * Expr.t list) list
(** All array writes in order. *)

val stored_arrays : t list -> string list
(** Deduplicated names of arrays written anywhere in the forest. *)

val scalars_read : t list -> string list
(** Deduplicated names of scalar variables read (before any local
    definition is taken into account). *)

val map_exprs : (Expr.t -> Expr.t) -> t list -> t list
(** Rewrite every expression in place (subscripts, bounds, conditions,
    right-hand sides), leaving structure intact. *)

val loop_depth : t list -> int

val redop_to_string : redop -> string
val pp_sched : Format.formatter -> sched -> unit
val pp : Format.formatter -> t -> unit
val pp_body : Format.formatter -> t list -> unit
