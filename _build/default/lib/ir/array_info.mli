(** Array metadata: element type, dope vector, data-motion intent.

    [intent] comes from OpenACC data clauses ([copyin] ⇒ the region
    only reads the array) and is combined with a per-region store
    analysis to decide read-only data-cache eligibility. *)

type intent = Copy_in | Copy_out | Copy | Create

type t = {
  name : string;
  elem : Types.dtype;
  dims : Dim.t list;  (** outermost dimension first (row-major) *)
  intent : intent;
}

val make : ?intent:intent -> string -> Types.dtype -> Dim.t list -> t
(** Default intent is [Copy]. *)

val rank : t -> int
val is_static : t -> bool
(** True when every dimension is compile-time constant: no dope-vector
    temporaries are needed for its offset computation. *)

val static_size : t -> int option
(** Total element count if the array is static. *)

val dims_equal : t -> t -> bool
(** The [dim]-clause compatibility test: same rank and structurally
    equal dimensions. *)

val dope_symbols : t -> string list
(** Scalar parameter names appearing in the dope vector (deduplicated,
    in first-occurrence order). Empty for static arrays. *)

val pp : Format.formatter -> t -> unit
