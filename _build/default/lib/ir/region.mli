(** OpenACC offload regions ([kernels] / [parallel] constructs),
    including the paper's two proposed clauses.

    A [dim] group asserts that the listed arrays share the same
    dimensions (optionally stating them), letting the code generator
    compute one offset for syntactically identical subscript lists and
    load one set of dope-vector temporaries for the whole group
    (§IV.A). The [small] set asserts that each listed array is smaller
    than 4 GB so its offsets fit in 32-bit integers (§IV.B). *)

type kind = Kernels | Parallel

type dim_group = {
  stated_dims : Dim.t list option;
      (** dimensions written in the clause; [None] means "take them
          from the first array's dope vector" *)
  group_arrays : string list;
}

type t = {
  rname : string;  (** kernel name, unique within the program *)
  kind : kind;
  body : Stmt.t list;
  dim_groups : dim_group list;
  small : string list;
}

val make : ?kind:kind -> ?dim_groups:dim_group list -> ?small:string list ->
  string -> Stmt.t list -> t

val dim_group_of : t -> string -> int option
(** Index of the [dim] group containing the array, if any. *)

val is_small : t -> string -> bool

val read_only_arrays : t -> string list
(** Arrays referenced in the region body that are never stored to
    within it — the candidates for the Kepler read-only data cache. *)

val referenced_arrays : t -> string list
(** All arrays loaded or stored in the region, deduplicated, in
    first-use order. *)

val weight : t -> int
(** Static statement count — a crude kernel-size measure used for
    reporting. *)

val pp : Format.formatter -> t -> unit
