type intent = Copy_in | Copy_out | Copy | Create

type t = {
  name : string;
  elem : Types.dtype;
  dims : Dim.t list;
  intent : intent;
}

let make ?(intent = Copy) name elem dims = { name; elem; dims; intent }

let rank t = List.length t.dims
let is_static t = List.for_all Dim.is_static t.dims

let static_size t =
  if is_static t then
    Some
      (List.fold_left
         (fun acc (d : Dim.t) ->
           match d.extent with Dim.Const n -> acc * n | Dim.Sym _ -> acc)
         1 t.dims)
  else None

let dims_equal a b =
  rank a = rank b && List.for_all2 Dim.equal a.dims b.dims

let dope_symbols t =
  let add acc = function Dim.Sym s when not (List.mem s acc) -> s :: acc | _ -> acc in
  List.rev
    (List.fold_left
       (fun acc (d : Dim.t) -> add (add acc d.lower) d.extent)
       [] t.dims)

let intent_to_string = function
  | Copy_in -> "copyin"
  | Copy_out -> "copyout"
  | Copy -> "copy"
  | Create -> "create"

let pp ppf t =
  Format.fprintf ppf "%a %s%a (%s)" Types.pp t.elem t.name
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) Dim.pp)
    t.dims
    (intent_to_string t.intent)
