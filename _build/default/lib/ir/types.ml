type dtype = I32 | I64 | F32 | F64 | Bool

let size_bytes = function I32 | F32 | Bool -> 4 | I64 | F64 -> 8
let registers = function I32 | F32 | Bool -> 1 | I64 | F64 -> 2
let is_float = function F32 | F64 -> true | I32 | I64 | Bool -> false
let is_integer = function I32 | I64 -> true | F32 | F64 | Bool -> false
let is_64bit = function I64 | F64 -> true | I32 | F32 | Bool -> false
let equal (a : dtype) b = a = b

let to_string = function
  | I32 -> "int"
  | I64 -> "long"
  | F32 -> "float"
  | F64 -> "double"
  | Bool -> "bool"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let rank = function Bool -> 0 | I32 -> 1 | I64 -> 2 | F32 -> 3 | F64 -> 4

let join a b =
  match (a, b) with
  | F64, _ | _, F64 -> F64
  | F32, I64 | I64, F32 -> F64
  | _ -> if rank a >= rank b then a else b
