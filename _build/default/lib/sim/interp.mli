(** Functional (untimed) kernel interpreter.

    Executes every thread of the launch sequentially against the
    simulated device memory. It is the semantic oracle of the
    reproduction: tests compare array contents across compiler
    configurations (base, SAFARA, clauses) to prove the
    transformations preserve meaning. *)

type env = {
  scalars : (string * Value.t) list;
      (** program scalar parameters by name *)
  mem : Memory.t;
}

(** Dynamic execution counters, summed over all threads. *)
type counters = {
  mutable c_instructions : int;
  mutable c_loads : int;  (** global/read-only loads (not local spills) *)
  mutable c_stores : int;
  mutable c_atomics : int;
  mutable c_spill_ops : int;  (** local-memory traffic *)
}

val fresh_counters : unit -> counters

val param_value :
  env -> Safara_ir.Program.t -> string -> Value.t
(** Resolve a kernel parameter name: an array name → its base address;
    a descriptor name like ["a.len2"] → the array's dimension extent;
    otherwise a scalar parameter. *)

val run_kernel :
  ?counters:counters ->
  prog:Safara_ir.Program.t ->
  env:env ->
  grid:int * int * int ->
  Safara_vir.Kernel.t ->
  unit
(** @raise Failure on a malformed kernel (unknown label, step budget
    exceeded — a guard against non-terminating generated code). *)

val max_steps_per_thread : int ref
(** Interpreter fuel per thread (default 10 million). *)
