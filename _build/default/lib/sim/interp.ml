module I = Safara_vir.Instr
module V = Safara_vir.Vreg
module K = Safara_vir.Kernel

type env = { scalars : (string * Value.t) list; mem : Memory.t }

type counters = {
  mutable c_instructions : int;
  mutable c_loads : int;
  mutable c_stores : int;
  mutable c_atomics : int;
  mutable c_spill_ops : int;
}

let fresh_counters () =
  { c_instructions = 0; c_loads = 0; c_stores = 0; c_atomics = 0; c_spill_ops = 0 }

let null_counters = fresh_counters ()

let max_steps_per_thread = ref 10_000_000

let dim_bound env (prog : Safara_ir.Program.t) array d ~which =
  let info = Safara_ir.Program.find_array prog array in
  let dim = List.nth info.Safara_ir.Array_info.dims d in
  let bound =
    match which with
    | `Extent -> dim.Safara_ir.Dim.extent
    | `Lower -> dim.Safara_ir.Dim.lower
  in
  match bound with
  | Safara_ir.Dim.Const n -> Value.I n
  | Safara_ir.Dim.Sym s -> (
      match List.assoc_opt s env.scalars with
      | Some v -> v
      | None -> failwith ("interp: unbound parameter " ^ s))

let param_value env prog name =
  match String.index_opt name '.' with
  | Some dot when String.length name >= dot + 4 && String.sub name dot 4 = ".len" ->
      let array = String.sub name 0 dot in
      let d = int_of_string (String.sub name (dot + 4) (String.length name - dot - 4)) in
      dim_bound env prog array d ~which:`Extent
  | Some dot when String.length name >= dot + 3 && String.sub name dot 3 = ".lo" ->
      let array = String.sub name 0 dot in
      let d = int_of_string (String.sub name (dot + 3) (String.length name - dot - 3)) in
      dim_bound env prog array d ~which:`Lower
  | _ -> (
      match List.assoc_opt name env.scalars with
      | Some v -> v
      | None -> (
          match Safara_ir.Program.find_array_opt prog name with
          | Some _ -> Value.I (Memory.base env.mem name)
          | None -> failwith ("interp: unbound kernel parameter " ^ name)))

(* label -> instruction index *)
let label_map code =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i instr -> match instr with I.Label l -> Hashtbl.replace tbl l i | _ -> ())
    code;
  tbl

let max_rid code =
  Array.fold_left
    (fun acc i ->
      List.fold_left (fun acc (r : V.t) -> max acc r.V.rid) acc (I.defs i @ I.uses i))
    0 code

let run_kernel ?(counters = null_counters) ~prog ~env ~grid (k : K.t) =
  let code = k.K.code in
  let labels = label_map code in
  let nregs = max_rid code + 1 in
  let gx, gy, gz = grid in
  let bx, by, bz = k.K.block in
  let regs = Array.make nregs (Value.I 0) in
  (* per-thread local memory for spill slots *)
  let local = Hashtbl.create 4 in
  let run_thread ~cta:(cx, cy, cz) ~tid:(tx, ty, tz) =
    Array.fill regs 0 nregs (Value.I 0);
    Hashtbl.reset local;
    let read r = regs.(r.V.rid) in
    let write r v = regs.(r.V.rid) <- v in
    let operand op = Value.of_operand op read in
    let pc = ref 0 in
    let steps = ref 0 in
    let n = Array.length code in
    while !pc < n do
      incr steps;
      if !steps > !max_steps_per_thread then failwith "interp: fuel exhausted";
      counters.c_instructions <- counters.c_instructions + 1;
      let next = ref (!pc + 1) in
      (match code.(!pc) with
      | I.Label _ -> ()
      | I.Ld { dst; addr; mem; _ } ->
          let a = Value.to_int (read addr) in
          if mem.I.m_space = Safara_gpu.Memspace.Local then begin
            counters.c_spill_ops <- counters.c_spill_ops + 1;
            write dst
              (Option.value (Hashtbl.find_opt local a) ~default:(Value.I 0))
          end
          else begin
            counters.c_loads <- counters.c_loads + 1;
            write dst (Memory.load env.mem ~addr:a)
          end
      | I.St { src; addr; mem; _ } ->
          let a = Value.to_int (read addr) in
          if mem.I.m_space = Safara_gpu.Memspace.Local then begin
            counters.c_spill_ops <- counters.c_spill_ops + 1;
            Hashtbl.replace local a (operand src)
          end
          else begin
            counters.c_stores <- counters.c_stores + 1;
            Memory.store env.mem ~addr:a (operand src)
          end
      | I.Ldp { dst; param } -> write dst (param_value env prog param)
      | I.Mov { dst; src } -> write dst (operand src)
      | I.Bin { op; dst; a; b } ->
          write dst (Exec.eval_bin op dst.V.rty (operand a) (operand b))
      | I.Una { op; dst; a } -> write dst (Exec.eval_una op dst.V.rty (operand a))
      | I.Cvt { dst; src } -> write dst (Exec.convert dst.V.rty (read src))
      | I.Setp { cmp; dst; a; b } ->
          write dst (Value.B (Exec.eval_cmp cmp (operand a) (operand b)))
      | I.Bra target -> (
          match Hashtbl.find_opt labels target with
          | Some i -> next := i
          | None -> failwith ("interp: unknown label " ^ target))
      | I.Brc { pred; if_true; target } ->
          if Value.to_bool (read pred) = if_true then (
            match Hashtbl.find_opt labels target with
            | Some i -> next := i
            | None -> failwith ("interp: unknown label " ^ target))
      | I.Spec { dst; sp } ->
          let v =
            match sp with
            | I.Tid I.X -> tx
            | I.Tid I.Y -> ty
            | I.Tid I.Z -> tz
            | I.Ctaid I.X -> cx
            | I.Ctaid I.Y -> cy
            | I.Ctaid I.Z -> cz
            | I.Ntid I.X -> bx
            | I.Ntid I.Y -> by
            | I.Ntid I.Z -> bz
            | I.Nctaid I.X -> gx
            | I.Nctaid I.Y -> gy
            | I.Nctaid I.Z -> gz
          in
          write dst (Value.I v)
      | I.Atom { op; addr; src; _ } ->
          counters.c_atomics <- counters.c_atomics + 1;
          let a = Value.to_int (read addr) in
          let v = operand src in
          Memory.rmw env.mem ~addr:a (fun old ->
              Exec.eval_bin op
                (match old with Value.F _ -> Safara_ir.Types.F64 | _ -> Safara_ir.Types.I64)
                old v)
      | I.Ret -> next := n);
      pc := !next
    done
  in
  for cz = 0 to gz - 1 do
    for cy = 0 to gy - 1 do
      for cx = 0 to gx - 1 do
        for tz = 0 to bz - 1 do
          for ty = 0 to by - 1 do
            for tx = 0 to bx - 1 do
              run_thread ~cta:(cx, cy, cz) ~tid:(tx, ty, tz)
            done
          done
        done
      done
    done
  done
