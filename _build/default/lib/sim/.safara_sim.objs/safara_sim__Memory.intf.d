lib/sim/memory.mli: Safara_ir Value
