lib/sim/value.mli: Format Safara_ir Safara_vir
