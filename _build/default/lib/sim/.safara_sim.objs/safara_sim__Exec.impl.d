lib/sim/exec.ml: Float Safara_ir Safara_vir Value
