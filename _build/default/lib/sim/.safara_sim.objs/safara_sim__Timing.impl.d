lib/sim/timing.ml: Array Exec Float Fun Hashtbl Interp List Memory Option Safara_gpu Safara_ir Safara_vir Value
