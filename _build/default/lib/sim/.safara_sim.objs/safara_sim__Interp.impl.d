lib/sim/interp.ml: Array Exec Hashtbl List Memory Option Safara_gpu Safara_ir Safara_vir String Value
