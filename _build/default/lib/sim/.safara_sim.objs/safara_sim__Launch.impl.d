lib/sim/launch.ml: Float Format Interp List Memory Safara_gpu Safara_ir Safara_ptxas Safara_vir Timing Value
