lib/sim/interp.mli: Memory Safara_ir Safara_vir Value
