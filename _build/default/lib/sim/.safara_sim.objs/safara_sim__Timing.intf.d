lib/sim/timing.mli: Interp Safara_gpu Safara_ir Safara_vir
