lib/sim/launch.mli: Format Interp Safara_gpu Safara_ir Safara_ptxas Safara_vir Value
