lib/sim/value.ml: Format Safara_ir Safara_vir
