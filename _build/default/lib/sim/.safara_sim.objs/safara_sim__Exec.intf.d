lib/sim/exec.mli: Safara_ir Safara_vir Value
