lib/sim/memory.ml: Array List Printf Safara_ir Value
