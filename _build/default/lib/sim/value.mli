(** Runtime values of the kernel interpreter. Integers cover both
    32- and 64-bit registers (OCaml ints are 63-bit); floats cover
    F32/F64 (F32 rounding is not modelled — the reproduction's
    numerics stay in double precision, like the benchmarks'). *)

type t = I of int | F of float | B of bool

val to_int : t -> int
val to_float : t -> float
val to_bool : t -> bool
val zero : Safara_ir.Types.dtype -> t
val of_operand : Safara_vir.Instr.operand -> (Safara_vir.Vreg.t -> t) -> t
val pp : Format.formatter -> t -> unit
