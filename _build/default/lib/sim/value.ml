type t = I of int | F of float | B of bool

let to_int = function I n -> n | F f -> int_of_float f | B b -> if b then 1 else 0
let to_float = function I n -> float_of_int n | F f -> f | B b -> if b then 1. else 0.
let to_bool = function B b -> b | I n -> n <> 0 | F f -> f <> 0.

let zero ty =
  if Safara_ir.Types.is_float ty then F 0.
  else if ty = Safara_ir.Types.Bool then B false
  else I 0

let of_operand op read =
  match op with
  | Safara_vir.Instr.Reg r -> read r
  | Safara_vir.Instr.Imm n -> I n
  | Safara_vir.Instr.FImm f -> F f

let pp ppf = function
  | I n -> Format.fprintf ppf "%d" n
  | F f -> Format.fprintf ppf "%g" f
  | B b -> Format.fprintf ppf "%b" b
