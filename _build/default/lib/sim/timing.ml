module I = Safara_vir.Instr
module V = Safara_vir.Vreg
module K = Safara_vir.Kernel
module M = Safara_gpu.Memspace
module T = Safara_ir.Types

type stats = {
  cycles : float;
  warps : int;
  instructions : int;
  transactions : int;
  issue_stall : float;
}

type warp = {
  w_regs : Value.t array;
  w_ready : float array;  (** per-rid operand availability, in cycles *)
  w_local : (int, Value.t) Hashtbl.t;
  w_cta : int * int * int;
  w_lane0 : int * int * int;
  w_sched : int;  (** scheduler this warp is statically assigned to *)
  mutable w_pc : int;
  mutable w_free : float;  (** earliest cycle this warp can issue *)
  mutable w_done : bool;
  mutable w_last : float;  (** completion time of the latest result *)
}

let issue_cost (lat : Safara_gpu.Latency.table) instr =
  ignore lat;
  match instr with
  | I.Bin { op = I.Div; dst; _ } when T.is_float dst.V.rty -> 8.
  | I.Bin { op = I.Pow; _ } -> 16.
  | I.Una { op = I.Sqrt | I.Exp | I.Log | I.Sin | I.Cos; _ } -> 4.
  | I.Bin { dst; _ } when T.is_64bit dst.V.rty -> 2.
  | _ -> 1.

let result_latency (lat : Safara_gpu.Latency.table) instr =
  let alu = float_of_int (Safara_gpu.Latency.arithmetic_latency lat `Alu) in
  match instr with
  | I.Bin { op = I.Div; dst; _ } when T.is_float dst.V.rty ->
      float_of_int (Safara_gpu.Latency.arithmetic_latency lat `Fdiv)
  | I.Bin { op = I.Pow; _ } | I.Una { op = I.Sqrt | I.Exp | I.Log | I.Sin | I.Cos; _ }
    ->
      float_of_int (Safara_gpu.Latency.arithmetic_latency lat `Special)
  | I.Bin { op = I.Mul | I.Div | I.Rem; dst; _ } when T.is_integer dst.V.rty ->
      float_of_int (Safara_gpu.Latency.arithmetic_latency lat `Mul)
  | I.Bin { dst; _ } when T.is_64bit dst.V.rty ->
      float_of_int (Safara_gpu.Latency.arithmetic_latency lat `F64)
  | _ -> alu

let simulate_resident_set ~arch ~latency ~prog ~env ~grid ~blocks_per_sm
    (k : K.t) =
  let code = k.K.code in
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun i instr -> match instr with I.Label l -> Hashtbl.replace labels l i | _ -> ())
    code;
  let nregs =
    1
    + Array.fold_left
        (fun acc i ->
          List.fold_left (fun acc (r : V.t) -> max acc r.V.rid) acc (I.defs i @ I.uses i))
        0 code
  in
  let gx, gy, gz = grid in
  let bx, by, bz = k.K.block in
  let total_blocks = gx * gy * gz in
  let nblocks = min blocks_per_sm (max 1 total_blocks) in
  let threads_per_block = bx * by * bz in
  let warp_size = arch.Safara_gpu.Arch.warp_size in
  let warps_per_block = (threads_per_block + warp_size - 1) / warp_size in
  let block_coords b = (b mod gx, b / gx mod gy, b / (gx * gy)) in
  let lane0_coords w =
    let lin = w * warp_size in
    (lin mod bx, lin / bx mod by, lin / (bx * by))
  in
  let warp_counter = ref 0 in
  let warps =
    List.concat_map
      (fun b ->
        List.init warps_per_block (fun w ->
            let id = !warp_counter in
            incr warp_counter;
            {
              w_regs = Array.make nregs (Value.I 0);
              w_ready = Array.make nregs 0.;
              w_local = Hashtbl.create 4;
              w_cta = block_coords b;
              w_lane0 = lane0_coords w;
              w_sched = id mod max 1 arch.Safara_gpu.Arch.issue_width;
              w_pc = 0;
              w_free = 0.;
              w_done = false;
              w_last = 0.;
            }))
      (List.init nblocks Fun.id)
  in
  let warps = Array.of_list warps in
  let mem_busy = ref 0. in
  (* Kepler statically partitions resident warps among its schedulers
     (issue_width of them); a warp can only issue on its own
     scheduler's port, so low occupancy leaves schedulers idle *)
  let nports = max 1 arch.Safara_gpu.Arch.issue_width in
  let issue_ports = Array.make nports 0. in
  let issue_step = 1. in
  let instructions = ref 0 in
  let transactions = ref 0 in
  let issue_stall = ref 0. in
  let elem_bytes (mem : I.mem) = mem.I.m_bytes in
  let txns (mem : I.mem) =
    M.transactions ~warp_size ~elem_bytes:(elem_bytes mem)
      ~segment_bytes:arch.Safara_gpu.Arch.mem_segment_bytes mem.I.m_access
  in
  (* --- cache model: recency windows over 128-byte segments ----------
     A segment re-touched within the last [l1_segments] distinct
     touches hits the per-SMX read-only/L1 path; within [l2_segments]
     (this SM's share of L2) it hits L2; otherwise it goes to DRAM.
     This is what makes re-loading a value fetched one iteration ago
     cheap on real hardware — and therefore what limits the benefit of
     replacing coalesced re-loads with registers (paper Fig 7). *)
  let seg_bytes = arch.Safara_gpu.Arch.mem_segment_bytes in
  let l1_segments = max 16 (arch.Safara_gpu.Arch.read_only_cache_bytes / seg_bytes) in
  let l2_segments =
    max l1_segments
      (arch.Safara_gpu.Arch.l2_bytes / seg_bytes / max 1 arch.Safara_gpu.Arch.num_sms)
  in
  let seg_last : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let seg_clock = ref 0 in
  let touch_tier ~ro addr =
    let seg = addr / seg_bytes in
    let age =
      match Hashtbl.find_opt seg_last seg with
      | None -> max_int
      | Some t -> !seg_clock - t
    in
    incr seg_clock;
    Hashtbl.replace seg_last seg !seg_clock;
    if age < l1_segments && ro then `L1
    else if age < l2_segments then `L2
    else `Dram
  in
  let tier_latency (mem : I.mem) tier =
    let base =
      match (tier, mem.I.m_space) with
      | _, M.Local -> latency.Safara_gpu.Latency.local_latency
      | _, M.Shared -> latency.Safara_gpu.Latency.shared_latency
      | _, (M.Constant | M.Param) ->
          Safara_gpu.Latency.memory_latency latency mem.I.m_space mem.I.m_access
      | `L1, M.Read_only -> latency.Safara_gpu.Latency.read_only_latency
      | `L1, _ | `L2, _ -> latency.Safara_gpu.Latency.l2_hit_latency
      | `Dram, _ -> latency.Safara_gpu.Latency.global_latency
    in
    let n = txns mem in
    float_of_int
      (base + (latency.Safara_gpu.Latency.extra_cycles_per_transaction * (n - 1)))
  in
  let tier_pipe_factor = function `L1 -> 0.1 | `L2 -> 0.25 | `Dram -> 1.0 in
  (* one simulation step for warp [w]: execute its next instruction *)
  let step (w : warp) =
    let instr = code.(w.w_pc) in
    let read (r : V.t) = w.w_regs.(r.V.rid) in
    let write (r : V.t) v = w.w_regs.(r.V.rid) <- v in
    let operand op = Value.of_operand op read in
    let op_ready =
      List.fold_left (fun acc (r : V.t) -> Float.max acc w.w_ready.(r.V.rid)) 0.
        (I.uses instr)
    in
    (match instr with
    | I.Label _ ->
        w.w_pc <- w.w_pc + 1
    | _ ->
        incr instructions;
        let port = w.w_sched in
        let want = Float.max w.w_free op_ready in
        let issue = Float.max want issue_ports.(port) in
        issue_stall := !issue_stall +. (issue -. want);
        issue_ports.(port) <- issue +. issue_step;
        let next = ref (w.w_pc + 1) in
        let complete = ref (issue +. 1.) in
        (match instr with
        | I.Label _ -> ()
        | I.Ld { dst; addr; mem; _ } ->
            let a = Value.to_int (read addr) in
            (if mem.I.m_space = M.Local then
               write dst (Option.value (Hashtbl.find_opt w.w_local a) ~default:(Value.I 0))
             else write dst (Memory.load env.Interp.mem ~addr:a));
            let tier =
              if mem.I.m_space = M.Local then `L1
              else touch_tier ~ro:(mem.I.m_space = M.Read_only) a
            in
            let n = txns mem in
            transactions := !transactions + n;
            let start = Float.max issue !mem_busy in
            mem_busy :=
              start
              +. (float_of_int n
                 *. arch.Safara_gpu.Arch.mem_cycles_per_transaction
                 *. tier_pipe_factor tier);
            let ready = start +. tier_latency mem tier in
            w.w_ready.(dst.V.rid) <- ready;
            complete := ready
        | I.St { src; addr; mem; _ } ->
            let a = Value.to_int (read addr) in
            (if mem.I.m_space = M.Local then Hashtbl.replace w.w_local a (operand src)
             else Memory.store env.Interp.mem ~addr:a (operand src));
            let tier =
              if mem.I.m_space = M.Local then `L1
              else
                (* stores allocate in L2, never in the read-only path *)
                match touch_tier ~ro:false a with `L1 -> `L2 | t -> t
            in
            let n = txns mem in
            transactions := !transactions + n;
            let start = Float.max issue !mem_busy in
            mem_busy :=
              start
              +. (float_of_int n
                 *. arch.Safara_gpu.Arch.mem_cycles_per_transaction
                 *. tier_pipe_factor tier);
            (* stores retire without blocking the warp *)
            complete := issue +. 1.
        | I.Atom { op; addr; src; mem; _ } ->
            let a = Value.to_int (read addr) in
            let v = operand src in
            Memory.rmw env.Interp.mem ~addr:a (fun old ->
                Exec.eval_bin op
                  (match old with Value.F _ -> T.F64 | _ -> T.I64)
                  old v);
            (* atomics serialize: charge a full round trip on the pipe *)
            let start = Float.max issue !mem_busy in
            let n = max 2 (txns mem) in
            transactions := !transactions + n;
            mem_busy :=
              start +. (float_of_int n *. arch.Safara_gpu.Arch.mem_cycles_per_transaction);
            complete := issue +. 1.
        | I.Ldp { dst; param } ->
            write dst (Interp.param_value env prog param);
            let ready =
              issue
              +. float_of_int
                   (Safara_gpu.Latency.memory_latency latency M.Param M.Invariant)
            in
            w.w_ready.(dst.V.rid) <- ready;
            complete := ready
        | I.Mov { dst; src } ->
            write dst (operand src);
            w.w_ready.(dst.V.rid) <- issue +. 1.
        | I.Bin { op; dst; a; b } ->
            write dst (Exec.eval_bin op dst.V.rty (operand a) (operand b));
            let ready = issue +. result_latency latency instr in
            w.w_ready.(dst.V.rid) <- ready;
            complete := issue +. issue_cost latency instr
        | I.Una { op; dst; a } ->
            write dst (Exec.eval_una op dst.V.rty (operand a));
            let ready = issue +. result_latency latency instr in
            w.w_ready.(dst.V.rid) <- ready;
            complete := issue +. issue_cost latency instr
        | I.Cvt { dst; src } ->
            write dst (Exec.convert dst.V.rty (read src));
            w.w_ready.(dst.V.rid) <- issue +. result_latency latency instr
        | I.Setp { cmp; dst; a; b } ->
            write dst (Value.B (Exec.eval_cmp cmp (operand a) (operand b)));
            w.w_ready.(dst.V.rid) <- issue +. result_latency latency instr
        | I.Spec { dst; sp } ->
            let tx, ty, tz = w.w_lane0 and cx, cy, cz = w.w_cta in
            let v =
              match sp with
              | I.Tid I.X -> tx
              | I.Tid I.Y -> ty
              | I.Tid I.Z -> tz
              | I.Ctaid I.X -> cx
              | I.Ctaid I.Y -> cy
              | I.Ctaid I.Z -> cz
              | I.Ntid I.X -> bx
              | I.Ntid I.Y -> by
              | I.Ntid I.Z -> bz
              | I.Nctaid I.X -> gx
              | I.Nctaid I.Y -> gy
              | I.Nctaid I.Z -> gz
            in
            write dst (Value.I v);
            w.w_ready.(dst.V.rid) <- issue +. 1.
        | I.Bra target -> next := Hashtbl.find labels target
        | I.Brc { pred; if_true; target } ->
            if Value.to_bool (read pred) = if_true then
              next := Hashtbl.find labels target
        | I.Ret ->
            w.w_done <- true);
        w.w_pc <- !next;
        w.w_free <- Float.max (issue +. 1.) (Float.min !complete (issue +. 8.));
        (* a warp stalls fully only when a later instruction needs the
           result; the scoreboard handles that via w_ready. w_free just
           models the issue pipeline. *)
        w.w_last <- Float.max w.w_last !complete);
    if w.w_pc >= Array.length code then w.w_done <- true
  in
  (* earliest time the warp's next instruction can actually issue:
     both the warp pipeline and the instruction's operands *)
  let issueable (w : warp) =
    if w.w_pc >= Array.length code then w.w_free
    else
      let instr = code.(w.w_pc) in
      List.fold_left
        (fun acc (r : V.t) -> Float.max acc w.w_ready.(r.V.rid))
        w.w_free (I.uses instr)
  in
  let remaining () = Array.exists (fun w -> not w.w_done) warps in
  while remaining () do
    (* the warp whose next instruction can issue earliest: processing
       events in nondecreasing issue order keeps the shared issue port
       honest *)
    let best = ref None and best_key = ref infinity in
    Array.iter
      (fun w ->
        if not w.w_done then begin
          let key = issueable w in
          if key < !best_key then begin
            best := Some w;
            best_key := key
          end
        end)
      warps;
    match !best with None -> () | Some w -> step w
  done;
  let cycles =
    Array.fold_left (fun acc w -> Float.max acc (Float.max w.w_last w.w_free)) 0. warps
  in
  {
    cycles = Float.max cycles !mem_busy;
    warps = Array.length warps;
    instructions = !instructions;
    transactions = !transactions;
    issue_stall = !issue_stall;
  }
