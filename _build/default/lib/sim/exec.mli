(** Pure instruction semantics shared by the functional interpreter and
    the timing simulator. Operations are typed by the destination
    register's data type (integer division truncates toward zero, like
    PTX [div.s32]). *)

val eval_bin :
  Safara_vir.Instr.binop -> Safara_ir.Types.dtype -> Value.t -> Value.t -> Value.t

val eval_una : Safara_vir.Instr.unop -> Safara_ir.Types.dtype -> Value.t -> Value.t

val eval_cmp : Safara_vir.Instr.cmp -> Value.t -> Value.t -> bool

val convert : Safara_ir.Types.dtype -> Value.t -> Value.t
(** [Cvt] semantics: float→int truncates, int→float widens exactly. *)
