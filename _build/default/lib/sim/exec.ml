module I = Safara_vir.Instr
module T = Safara_ir.Types

let eval_bin op ty a b =
  if T.is_float ty then
    let x = Value.to_float a and y = Value.to_float b in
    Value.F
      (match op with
      | I.Add -> x +. y
      | I.Sub -> x -. y
      | I.Mul -> x *. y
      | I.Div -> x /. y
      | I.Rem -> Float.rem x y
      | I.Min -> Float.min x y
      | I.Max -> Float.max x y
      | I.Pow -> Float.pow x y
      | I.And | I.Or -> invalid_arg "exec: logical op on floats")
  else if ty = T.Bool then
    let x = Value.to_bool a and y = Value.to_bool b in
    Value.B
      (match op with
      | I.And -> x && y
      | I.Or -> x || y
      | _ -> invalid_arg "exec: arithmetic on predicates")
  else
    let x = Value.to_int a and y = Value.to_int b in
    Value.I
      (match op with
      | I.Add -> x + y
      | I.Sub -> x - y
      | I.Mul -> x * y
      | I.Div -> if y = 0 then 0 else x / y
      | I.Rem -> if y = 0 then 0 else x mod y
      | I.Min -> min x y
      | I.Max -> max x y
      | I.Pow -> int_of_float (Float.pow (float_of_int x) (float_of_int y))
      | I.And | I.Or -> invalid_arg "exec: logical op on integers")

let eval_una op ty a =
  match op with
  | I.Not -> Value.B (not (Value.to_bool a))
  | I.Neg ->
      if T.is_float ty then Value.F (-.Value.to_float a)
      else Value.I (-Value.to_int a)
  | I.Sqrt -> Value.F (sqrt (Value.to_float a))
  | I.Exp -> Value.F (exp (Value.to_float a))
  | I.Log -> Value.F (log (Value.to_float a))
  | I.Sin -> Value.F (sin (Value.to_float a))
  | I.Cos -> Value.F (cos (Value.to_float a))
  | I.Fabs -> Value.F (Float.abs (Value.to_float a))
  | I.Floor -> Value.F (Float.floor (Value.to_float a))

let eval_cmp cmp a b =
  match (a, b) with
  | Value.F _, _ | _, Value.F _ ->
      let x = Value.to_float a and y = Value.to_float b in
      (match cmp with
      | I.Eq -> x = y
      | I.Ne -> x <> y
      | I.Lt -> x < y
      | I.Le -> x <= y
      | I.Gt -> x > y
      | I.Ge -> x >= y)
  | _ ->
      let x = Value.to_int a and y = Value.to_int b in
      (match cmp with
      | I.Eq -> x = y
      | I.Ne -> x <> y
      | I.Lt -> x < y
      | I.Le -> x <= y
      | I.Gt -> x > y
      | I.Ge -> x >= y)

let convert ty v =
  if T.is_float ty then Value.F (Value.to_float v)
  else if ty = T.Bool then Value.B (Value.to_bool v)
  else Value.I (Value.to_int v)
