module T = Safara_ir.Types

type payload = F of float array | I of int array

type alloc = { a_base : int; a_bytes : int; a_elem : int; a_payload : payload }

type t = {
  mutable allocs : (string * alloc) list;  (** sorted by base, ascending *)
  mutable next : int;
}

let create () = { allocs = []; next = 0x10000 }

let alloc t ~name ~elem ~length =
  if length <= 0 then invalid_arg ("memory: nonpositive length for " ^ name);
  if List.mem_assoc name t.allocs then invalid_arg ("memory: duplicate " ^ name);
  let elem_bytes = T.size_bytes elem in
  let payload =
    if T.is_float elem then F (Array.make length 0.) else I (Array.make length 0)
  in
  let a =
    { a_base = t.next; a_bytes = length * elem_bytes; a_elem = elem_bytes; a_payload = payload }
  in
  t.allocs <- t.allocs @ [ (name, a) ];
  (* 256-byte alignment, like cudaMalloc *)
  t.next <- t.next + ((a.a_bytes + 255) / 256 * 256)

let dim_value env (d : Safara_ir.Dim.t) =
  match d.Safara_ir.Dim.extent with
  | Safara_ir.Dim.Const n -> n
  | Safara_ir.Dim.Sym s -> (
      match List.assoc_opt s env with
      | Some v -> v
      | None -> invalid_arg ("memory: unbound dimension parameter " ^ s))

let alloc_program t ~env (p : Safara_ir.Program.t) =
  List.iter
    (fun (a : Safara_ir.Array_info.t) ->
      let length =
        List.fold_left (fun acc d -> acc * dim_value env d) 1 a.Safara_ir.Array_info.dims
      in
      alloc t ~name:a.Safara_ir.Array_info.name ~elem:a.Safara_ir.Array_info.elem ~length)
    p.Safara_ir.Program.arrays

let find_by_name t name =
  match List.assoc_opt name t.allocs with
  | Some a -> a
  | None -> invalid_arg ("memory: unknown array " ^ name)

let base t name = (find_by_name t name).a_base

let find_by_addr t addr =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "memory: wild address %#x" addr)
    | (_, a) :: rest ->
        if addr >= a.a_base && addr < a.a_base + a.a_bytes then a else go rest
  in
  go t.allocs

let load t ~addr =
  let a = find_by_addr t addr in
  let idx = (addr - a.a_base) / a.a_elem in
  match a.a_payload with
  | F data -> Value.F data.(idx)
  | I data -> Value.I data.(idx)

let store t ~addr v =
  let a = find_by_addr t addr in
  let idx = (addr - a.a_base) / a.a_elem in
  match a.a_payload with
  | F data -> data.(idx) <- Value.to_float v
  | I data -> data.(idx) <- Value.to_int v

let rmw t ~addr f =
  let v = load t ~addr in
  store t ~addr (f v)

let float_data t name =
  match (find_by_name t name).a_payload with
  | F data -> data
  | I _ -> invalid_arg ("memory: " ^ name ^ " is an integer array")

let int_data t name =
  match (find_by_name t name).a_payload with
  | I data -> data
  | F _ -> invalid_arg ("memory: " ^ name ^ " is a float array")

let copy t =
  {
    allocs =
      List.map
        (fun (n, a) ->
          ( n,
            {
              a with
              a_payload =
                (match a.a_payload with
                | F d -> F (Array.copy d)
                | I d -> I (Array.copy d));
            } ))
        t.allocs;
    next = t.next;
  }

let checksum t name =
  let a = find_by_name t name in
  match a.a_payload with
  | F data ->
      Array.fold_left (fun acc x -> acc +. x) 0. data
  | I data -> float_of_int (Array.fold_left ( + ) 0 data)
