(** Simulated device global memory.

    Each program array gets a contiguous allocation in a flat
    byte-addressed space; kernels compute raw addresses
    (base + offset×size) exactly as the generated code does, and the
    memory resolves them back to a cell. Integer arrays and float
    arrays use separate payloads so the interpreter stays typed. *)

type payload = F of float array | I of int array

type t

val create : unit -> t

val alloc :
  t -> name:string -> elem:Safara_ir.Types.dtype -> length:int -> unit
(** Allocate [length] zero-initialized elements.
    @raise Invalid_argument on duplicate names or nonpositive length. *)

val alloc_program :
  t -> env:(string * int) list -> Safara_ir.Program.t -> unit
(** Allocate every array of a program, sizing symbolic dimensions from
    the integer parameter environment. *)

val base : t -> string -> int
(** Device base address of an array. *)

val load : t -> addr:int -> Value.t
val store : t -> addr:int -> Value.t -> unit
val rmw : t -> addr:int -> (Value.t -> Value.t) -> unit

val float_data : t -> string -> float array
(** Direct view of a float array's payload (shared, mutable) — used by
    workload generators and result checking. *)

val int_data : t -> string -> int array

val copy : t -> t
(** Deep copy (timing runs mutate memory; copies isolate them). *)

val checksum : t -> string -> float
(** Order-independent digest of an array's contents, for golden
    comparisons between compiler configurations. *)
