let spec =
  [
    Spec_misc.ostencil;
    Spec_misc.olbm;
    Spec_misc.omriq;
    Spec_misc.ep;
    Spec_misc.cg;
    Spec_seismic.workload;
    Spec_sp.workload;
    Spec_misc.csp;
    Spec_misc.mghost;
    Spec_misc.bt;
  ]

let npb = Npb_suite.workloads

let extended = Spec_extended.workloads

let all = spec @ npb @ extended

let find id = List.find (fun (w : Workload.t) -> String.equal w.Workload.id id) all
