lib/suites/registry.mli: Workload
