lib/suites/spec_extended.ml: Safara_sim Workload
