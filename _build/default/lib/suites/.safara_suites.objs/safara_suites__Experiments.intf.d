lib/suites/experiments.mli:
