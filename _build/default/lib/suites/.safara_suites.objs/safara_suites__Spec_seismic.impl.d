lib/suites/spec_seismic.ml: Safara_sim Workload
