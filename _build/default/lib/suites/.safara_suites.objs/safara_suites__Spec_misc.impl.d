lib/suites/spec_misc.ml: Safara_sim Workload
