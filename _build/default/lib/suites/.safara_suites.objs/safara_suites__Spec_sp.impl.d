lib/suites/spec_sp.ml: Safara_sim Workload
