lib/suites/registry.ml: List Npb_suite Spec_extended Spec_misc Spec_seismic Spec_sp String Workload
