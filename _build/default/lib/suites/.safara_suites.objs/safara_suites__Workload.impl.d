lib/suites/workload.ml: Array List Option Safara_core Safara_ir Safara_sim
