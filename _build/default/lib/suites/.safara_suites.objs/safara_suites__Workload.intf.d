lib/suites/workload.mli: Safara_core Safara_ir Safara_sim
