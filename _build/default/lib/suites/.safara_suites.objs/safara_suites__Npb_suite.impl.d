lib/suites/npb_suite.ml: Safara_sim Workload
