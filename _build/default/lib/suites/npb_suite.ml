(* NAS Parallel Benchmark OpenACC analogues (Xu et al., LCPC 2014 —
   the paper's reference [20]). The NAS C versions use statically-sized
   arrays, not VLAs, so the dim clause is not applicable (paper §V.C)
   and our compiler already proves static offsets fit in 32 bits, which
   is why the small bars sit near 1.0 on Fig 10. Problem geometry is a
   scaled-down class C: the sweep structures, array counts and
   coalescing patterns are preserved. *)

let v = fun n -> Safara_sim.Value.I n

(* --- EP --------------------------------------------------------------- *)

let ep =
  Workload.make ~id:"EP" ~title:"NAS EP: embarrassingly parallel"
    ~suite:Workload.Npb
    ~description:
      "Private pseudo-random Gaussian tallies; compute-bound control \
       benchmark: no reuse for SAFARA to exploit."
    ~scalars:[ ("n", v 16384) ]
    ~check_arrays:[ "sx"; "sy" ]
    {|
param int n;
in double seeds[16384];
double sx[16384];
double sy[16384];

#pragma acc kernels name(ep_gauss)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n - 1; i++) {
    double t;
    double ax;
    double ay;
    double u1;
    double u2;
    t = seeds[i];
    ax = 0.0;
    ay = 0.0;
    #pragma acc loop seq
    for (k = 0; k <= 23; k++) {
      t = t * 1220.703125 + 0.31415;
      t = t - floor(t);
      u1 = 2.0 * t - 1.0;
      t = t * 1220.703125 + 0.27182;
      t = t - floor(t);
      u2 = 2.0 * t - 1.0;
      ax = ax + u1 * sqrt(fabs(1.0 - u1 * u1 - u2 * u2) + 0.01);
      ay = ay + u2 * sqrt(fabs(1.0 - u1 * u1 - u2 * u2) + 0.01);
    }
    sx[i] = ax;
    sy[i] = ay;
  }
}
|}

(* --- CG --------------------------------------------------------------- *)

let cg =
  Workload.make ~id:"CG" ~title:"NAS CG: conjugate gradient"
    ~suite:Workload.Npb
    ~description:
      "Sparse matvec with indirect gathers plus the alpha/rho dot \
       products; the row accumulator promotes to a register across \
       the nonzero loop."
    ~scalars:[ ("nrow", v 4096) ]
    ~check_arrays:[ "q"; "rho" ]
    {|
param int nrow;
in double aval[4096][20];
in int acol[4096][20];
in double p[4096];
double q[4096];
double rho[1];

#pragma acc kernels name(cg_spmv)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= nrow - 1; i++) {
    q[i] = 0.0;
    #pragma acc loop seq
    for (k = 0; k <= 19; k++) {
      q[i] = q[i] + aval[i][k] * p[acol[i][k]];
    }
  }
}

#pragma acc kernels name(cg_axpy)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= nrow - 1; i++) {
    q[i] = q[i] * 0.9 + p[i] * 0.1;
  }
}

#pragma acc kernels name(cg_dot)
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= nrow - 1; i++) {
    sum += p[i] * q[i];
  }
  rho[0] = sum;
}
|}

(* --- MG --------------------------------------------------------------- *)

let mg =
  Workload.make ~id:"MG" ~title:"NAS MG: multigrid V-cycle step"
    ~suite:Workload.Npb
    ~description:
      "Smooth (27-point flavoured, sequential k walk with plane \
       chains), restrict to the coarse grid, and prolongate back — \
       the three kernel families of the MG psinv/resid/rprj3/interp \
       set."
    ~scalars:[ ("nx", v 64); ("ny", v 128); ("nz", v 16) ]
    ~check_arrays:[ "r"; "zc"; "zf" ]
    {|
param int nx;
param int ny;
param int nz;
in double u[16][128][64];
double r[16][128][64];
double zc[8][64][32];
double zf[16][128][64];

#pragma acc kernels name(mg_smooth)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        r[k][j][i] = 0.5 * u[k][j][i]
          + 0.25 * (u[k][j][i-1] + u[k][j][i+1] + u[k][j-1][i] + u[k][j+1][i])
          + 0.125 * (u[k-1][j][i] + u[k+1][j][i] + u[k-1][j-1][i] + u[k+1][j+1][i]);
      }
    }
  }
}

#pragma acc kernels name(mg_resid)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        zf[k][j][i] = u[k][j][i]
          - 0.25 * (r[k][j][i-1] + r[k][j][i+1] + r[k][j-1][i] + r[k][j+1][i])
          - 0.125 * (r[k-1][j][i] + r[k+1][j][i]);
      }
    }
  }
}

#pragma acc kernels name(mg_restrict)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny/2 - 2; j++) {
    #pragma acc loop gang vector(32)
    for (i = 1; i <= nx/2 - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz/2 - 2; k++) {
        zc[k][j][i] = 0.125 * (r[2*k][2*j][2*i] + r[2*k][2*j][2*i+1]
                             + r[2*k][2*j+1][2*i] + r[2*k+1][2*j][2*i])
                    + 0.0625 * (r[2*k+1][2*j+1][2*i] + r[2*k+1][2*j][2*i+1]
                              + r[2*k][2*j+1][2*i+1] + r[2*k+1][2*j+1][2*i+1]);
      }
    }
  }
}

#pragma acc kernels name(mg_interp)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny/2 - 2; j++) {
    #pragma acc loop gang vector(32)
    for (i = 1; i <= nx/2 - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz/2 - 2; k++) {
        zf[2*k][2*j][2*i] = zf[2*k][2*j][2*i] + zc[k][j][i];
        zf[2*k][2*j][2*i+1] = zf[2*k][2*j][2*i+1]
          + 0.5 * (zc[k][j][i] + zc[k][j][i+1]);
      }
    }
  }
}
|}

(* --- SP --------------------------------------------------------------- *)

let sp =
  Workload.make ~id:"SP" ~title:"NAS SP: scalar penta-diagonal"
    ~suite:Workload.Npb
    ~description:
      "The x-direction line solve walks the fastest dimension \
       sequentially with (j,k) threads — every access uncoalesced, \
       with forward-recurrence chains; SAFARA's best case (paper \
       §V.C: SP kernels contain uncoalesced accesses)."
    ~scalars:[ ("nx", v 24); ("ny", v 64); ("nz", v 128) ]
    ~check_arrays:[ "lhs"; "rhs1"; "rhs2" ]
    {|
param int nx;
param int ny;
param int nz;
in double u[128][64][24];
double lhs[128][64][24];
double rhs1[128][64][24];
double rhs2[128][64][24];

#pragma acc kernels name(sp_xsolve)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        double fac;
        fac = 1.0 / (2.0 + u[k][j][i] * 0.1);
        lhs[k][j][i] = fac * (u[k][j][i-1] + u[k][j][i+1]);
        rhs1[k][j][i] = fac * (rhs1[k][j][i-1] * 0.4 + u[k][j][i] + u[k][j][i-1]);
        rhs2[k][j][i] = fac * (rhs2[k][j][i-1] * 0.4 + u[k][j][i] - u[k][j][i+1]);
      }
    }
  }
}
|}

(* --- LU --------------------------------------------------------------- *)

let lu =
  Workload.make ~id:"LU" ~title:"NAS LU: SSOR sweep"
    ~suite:Workload.Npb
    ~description:
      "Lower-triangular SSOR relaxation along the x lines: threads \
       cover (k,j) while the sweep walks the fastest dimension — the \
       uncoalesced access pattern the paper names for LU (section V.C) — \
       with forward dependencies across three components."
    ~scalars:[ ("nx", v 24); ("ny", v 64); ("nz", v 128) ]
    ~check_arrays:[ "v1"; "v2"; "v3" ]
    {|
param int nx;
param int ny;
param int nz;
in double a1[128][64][24];
in double a2[128][64][24];
in double a3[128][64][24];
in double b1[128][64][24];
in double b2[128][64][24];
in double b3[128][64][24];
double v1[128][64][24];
double v2[128][64][24];
double v3[128][64][24];

#pragma acc kernels name(lu_jacld)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        v1[k][j][i] = b1[k][j][i] * 0.4 + a1[k][j][i] * a2[k][j][i];
        v2[k][j][i] = b2[k][j][i] * 0.4 + a2[k][j][i] * a3[k][j][i];
        v3[k][j][i] = b3[k][j][i] * 0.4 + a3[k][j][i] * a1[k][j][i];
      }
    }
  }
}

#pragma acc kernels name(lu_blts)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        v1[k][j][i] = b1[k][j][i] - 0.5 * (a1[k][j][i] * v1[k][j][i-1]
                                         + a2[k][j][i] * v2[k][j][i-1]);
        v2[k][j][i] = b2[k][j][i] - 0.5 * (a2[k][j][i] * v1[k][j][i-1]
                                         + a3[k][j][i] * v3[k][j][i-1]);
        v3[k][j][i] = b3[k][j][i] - 0.5 * (a1[k][j][i] * v3[k][j][i-1]
                                         + a3[k][j][i] * v2[k][j][i-1]);
      }
    }
  }
}
|}

(* --- BT --------------------------------------------------------------- *)

let bt =
  Workload.make ~id:"BT" ~title:"NAS BT: block tridiagonal"
    ~suite:Workload.Npb
    ~description:
      "x-direction block solve over five coupled components: threads \
       cover (j,k) while i walks the fastest dimension — heavily \
       uncoalesced with rich forward chains; the paper's best NAS \
       speedup comes from kernels of this shape."
    ~scalars:[ ("nx", v 24); ("ny", v 64); ("nz", v 128) ]
    ~check_arrays:[ "w1"; "w2"; "w3"; "w4" ]
    {|
param int nx;
param int ny;
param int nz;
in double c1[128][64][24];
in double c2[128][64][24];
in double c3[128][64][24];
in double c4[128][64][24];
double w1[128][64][24];
double w2[128][64][24];
double w3[128][64][24];
double w4[128][64][24];

#pragma acc kernels name(bt_xsolve)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        double pivot;
        pivot = 1.0 / (1.0 + c1[k][j][i] * c1[k][j][i-1]);
        w1[k][j][i] = pivot * (w1[k][j][i-1] * 0.3 + c1[k][j][i] + c2[k][j][i-1]);
        w2[k][j][i] = pivot * (w2[k][j][i-1] * 0.3 + c2[k][j][i] + c3[k][j][i-1]);
        w3[k][j][i] = pivot * (w3[k][j][i-1] * 0.3 + c3[k][j][i] + c4[k][j][i-1]);
        w4[k][j][i] = pivot * (w4[k][j][i-1] * 0.3 + c4[k][j][i] + c1[k][j][i-1]);
      }
    }
  }
}

#pragma acc kernels name(bt_ysolve)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (j = 1; j <= ny - 2; j++) {
        double pivot;
        pivot = 1.0 / (1.0 + c2[k][j][i] * c2[k][j-1][i]);
        w1[k][j][i] = pivot * (w1[k][j-1][i] * 0.3 + c1[k][j][i] + c3[k][j-1][i]);
        w2[k][j][i] = pivot * (w2[k][j-1][i] * 0.3 + c2[k][j][i] + c4[k][j-1][i]);
      }
    }
  }
}
|}

let workloads = [ ep; cg; mg; sp; lu; bt ]
