(** Registry of all benchmark workloads, in the paper's presentation
    order. *)

val spec : Workload.t list
(** The ten SPEC ACCEL OpenACC analogues (Figs 7, 9, 11; Tables I–II). *)

val npb : Workload.t list
(** The six NAS analogues: EP CG MG SP LU BT (Figs 10, 12). *)

val extended : Workload.t list
(** The remaining SPEC ACCEL OpenACC members (350.md, 353.clvrleaf,
    360.ilbdc, 363.swim): fully supported and tested, but outside the
    ten bars the paper's figures show. *)

val all : Workload.t list
(** [spec @ npb @ extended]. *)

val find : string -> Workload.t
(** @raise Not_found for unknown ids. *)
