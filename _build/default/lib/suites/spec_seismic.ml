(* 355.seismic analogue: a 3D staggered-grid elastic wave propagation
   kernel set (SEISMIC_CPML style), transliterated from the Fortran
   original's structure: many same-shaped 3D allocatable arrays, the
   Fig-8 loop schedule (outer j gang vector(2), middle i gang
   vector(64), innermost k sequential), and finite-difference
   derivative chains along k. The paper evaluates seven hot kernels
   (Table I); each region below is one of them. *)

let source =
  {|
param int nx;
param int ny;
param int nz;
param double dt;
param double h;

double vx[1:nz][1:ny][1:nx];
double vy[1:nz][1:ny][1:nx];
double vz[1:nz][1:ny][1:nx];
double sigxx[1:nz][1:ny][1:nx];
double sigyy[1:nz][1:ny][1:nx];
double sigzz[1:nz][1:ny][1:nx];
double sigxy[1:nz][1:ny][1:nx];
double sigxz[1:nz][1:ny][1:nx];
double sigyz[1:nz][1:ny][1:nx];
in double rho[1:nz][1:ny][1:nx];
in double lam[1:nz][1:ny][1:nx];
in double mu[1:nz][1:ny][1:nx];
double memx[1:nz][1:ny][1:nx];
double memy[1:nz][1:ny][1:nx];
double memz[1:nz][1:ny][1:nx];
in double ax[1:nz][1:ny][1:nx];
in double bx[1:nz][1:ny][1:nx];

// HOT1: velocity update vx/vy/vz from the six stress components
// (4th-order staggered derivative along k)
#pragma acc kernels name(hot1) \
  dim((vx, vy, vz, sigxx, sigyy, sigzz, sigxy, sigxz, sigyz, rho, memx, memy, memz, ax)) \
  small(vx, vy, vz, sigxx, sigyy, sigzz, sigxy, sigxz, sigyz, rho, memx, memy, memz, ax)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 3; k <= nz - 1; k++) {
        double dvx;
        double dvy;
        double dvz;
        dvx = (sigxx[k][j][i] - sigxx[k][j][i-1]) / h
            + (sigxy[k][j][i] - sigxy[k][j-1][i]) / h
            + (1.125 * (sigxz[k][j][i] - sigxz[k-1][j][i])
               - 0.0417 * (sigxz[k+1][j][i] - sigxz[k-2][j][i])) / h
            + memx[k][j][i] * ax[k][j][i];
        dvy = (sigxy[k][j][i] - sigxy[k][j][i-1]) / h
            + (sigyy[k][j][i] - sigyy[k][j-1][i]) / h
            + (1.125 * (sigyz[k][j][i] - sigyz[k-1][j][i])
               - 0.0417 * (sigyz[k+1][j][i] - sigyz[k-2][j][i])) / h
            + memy[k][j][i] * ax[k][j][i];
        dvz = (sigxz[k][j][i] - sigxz[k][j][i-1]) / h
            + (sigyz[k][j][i] - sigyz[k][j-1][i]) / h
            + (1.125 * (sigzz[k][j][i] - sigzz[k-1][j][i])
               - 0.0417 * (sigzz[k+1][j][i] - sigzz[k-2][j][i])) / h
            + memz[k][j][i] * ax[k][j][i];
        vx[k][j][i] = vx[k][j][i] + dvx * dt / rho[k][j][i];
        vy[k][j][i] = vy[k][j][i] + dvy * dt / rho[k][j][i];
        vz[k][j][i] = vz[k][j][i] + dvz * dt / rho[k][j][i];
      }
    }
  }
}

// HOT2: normal stress update from velocity derivatives (Fig 8's code)
#pragma acc kernels name(hot2) \
  dim((vx, vy, vz, sigxx, sigyy, sigzz, lam, mu, rho, memx, memy, memz, ax, bx)) \
  small(vx, vy, vz, sigxx, sigyy, sigzz, lam, mu, rho, memx, memy, memz, ax, bx)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 3; k <= nz - 1; k++) {
        double dvxx;
        double dvyy;
        double dvzz;
        double trace;
        dvxx = (1.125 * (vx[k][j][i+1] - vx[k][j][i])
               - 0.0417 * (vx[k+1][j][i] - vx[k-2][j][i])) / h
             + memx[k][j][i] * bx[k][j][i];
        dvyy = (1.125 * (vy[k][j+1][i] - vy[k][j][i])
               - 0.0417 * (vy[k+1][j][i] - vy[k-2][j][i])) / h
             + memy[k][j][i] * bx[k][j][i];
        dvzz = (1.125 * (vz[k][j][i] - vz[k-1][j][i])
               - 0.0417 * (vz[k+1][j][i] - vz[k-2][j][i])) / h
             + memz[k][j][i] * ax[k][j][i];
        trace = lam[k][j][i] * rho[k][j][i] * (dvxx + dvyy + dvzz);
        sigxx[k][j][i] = sigxx[k][j][i] + (trace + 2.0 * mu[k][j][i] * dvxx) * dt;
        sigyy[k][j][i] = sigyy[k][j][i] + (trace + 2.0 * mu[k][j][i] * dvyy) * dt;
        sigzz[k][j][i] = sigzz[k][j][i] + (trace + 2.0 * mu[k][j][i] * dvzz) * dt;
      }
    }
  }
}

// HOT3: shear stress update
#pragma acc kernels name(hot3) \
  dim((vx, vy, vz, sigxy, sigxz, sigyz, mu, rho, ax, bx)) \
  small(vx, vy, vz, sigxy, sigxz, sigyz, mu, rho, ax, bx)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 3; k <= nz - 1; k++) {
        sigxy[k][j][i] = sigxy[k][j][i] * ax[k][j][i] + bx[k][j][i]
          + mu[k][j][i] * rho[k][j][i]
            * ((vx[k][j+1][i] - vx[k][j-1][i]) + (vy[k][j][i+1] - vy[k][j][i-1])) * dt / h;
        sigxz[k][j][i] = sigxz[k][j][i] * ax[k][j][i] + bx[k][j][i]
          + mu[k][j][i] * rho[k][j][i]
            * ((vx[k+1][j][i] - vx[k-1][j][i]) + (vz[k][j][i+1] - vz[k][j][i-1])) * dt / h;
        sigyz[k][j][i] = sigyz[k][j][i] * ax[k][j][i] + bx[k][j][i]
          + mu[k][j][i] * rho[k][j][i]
            * ((vy[k+1][j][i] - vy[k-1][j][i]) + (vz[k][j+1][i] - vz[k][j-1][i])) * dt / h;
      }
    }
  }
}

// HOT4: CPML memory variable update along x
#pragma acc kernels name(hot4) \
  dim((memx, ax, bx, sigxx)) \
  small(memx, ax, bx, sigxx)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        memx[k][j][i] = bx[k][j][i] * memx[k][j][i]
          + ax[k][j][i] * (sigxx[k][j][i] - sigxx[k-1][j][i]) / h;
      }
    }
  }
}

// HOT5: CPML memory variable update along y
#pragma acc kernels name(hot5) \
  dim((memy, ax, bx, sigyy)) \
  small(memy, ax, bx, sigyy)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        memy[k][j][i] = bx[k][j][i] * memy[k][j][i]
          + ax[k][j][i] * (sigyy[k][j][i] - sigyy[k-1][j][i]) / h;
      }
    }
  }
}

// HOT6: CPML memory variable update along z
#pragma acc kernels name(hot6) \
  dim((vz, memz, ax, bx, sigzz)) \
  small(vz, memz, ax, bx, sigzz)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        memz[k][j][i] = bx[k][j][i] * memz[k][j][i]
          + ax[k][j][i] * (vz[k][j][i] - vz[k-1][j][i]) / h
          + ax[k][j][i] * (sigzz[k][j][i] - sigzz[k-1][j][i]) / h;
      }
    }
  }
}

// HOT7: energy accumulation (the value_dz computation of Fig 8)
#pragma acc kernels name(hot7) \
  dim((vx, vy, vz, memz)) \
  small(vx, vy, vz, memz)
{
  #pragma acc loop gang vector(2)
  for (j = 2; j <= ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i <= nx - 1; i++) {
      #pragma acc loop seq
      for (k = 2; k <= nz - 1; k++) {
        memz[k][j][i] = (vx[k][j][i] - vx[k-1][j][i]) / h
                      + (vy[k][j][i] - vy[k-1][j][i]) / h
                      + (vz[k][j][i] - vz[k-1][j][i]) / h;
      }
    }
  }
}
|}

let hot_kernels = [ "hot1"; "hot2"; "hot3"; "hot4"; "hot5"; "hot6"; "hot7" ]

let workload =
  Workload.make ~id:"355.seismic" ~title:"seismic wave propagation (SEISMIC_CPML)"
    ~suite:Workload.Spec
    ~description:
      "Fortran allocatable-array elastic wave kernels with the paper's \
       Fig-8 schedule; seven hot regions matching Table I's register \
       study. Many same-shaped 3D dope-vector arrays per kernel make \
       this the dim/small showcase."
    ~scalars:
      [ ("nx", Safara_sim.Value.I 64); ("ny", Safara_sim.Value.I 256);
        ("nz", Safara_sim.Value.I 24); ("dt", Safara_sim.Value.F 0.001);
        ("h", Safara_sim.Value.F 0.25) ]
    ~check_arrays:[ "vx"; "vy"; "vz"; "sigxx"; "sigyy"; "sigzz"; "memx"; "memz" ]
    source
