(* The remaining SPEC ACCEL OpenACC analogues. Each workload models the
   dominant offload kernels of the original benchmark: array counts,
   dimensionality, reuse distances and coalescing behaviour follow the
   published benchmark structure (see DESIGN.md). The C benchmarks
   (303, 304, 314, 357) use pointer-style arrays in the original, so
   the paper applies no dim clause to them; we mirror that by giving
   them only small clauses. *)

let v = fun n -> Safara_sim.Value.I n
let f = fun x -> Safara_sim.Value.F x

(* --- 303.ostencil: 3D 7-point Jacobi heat stencil ------------------- *)

let ostencil =
  Workload.make ~id:"303.ostencil" ~title:"3D 7-point Jacobi stencil"
    ~suite:Workload.Spec
    ~description:
      "Parboil 'stencil': two 3D grids ping-pong; the innermost grid \
       dimension is vectorized, the k column walk is sequential and \
       carries a span-2 reuse chain on the read grid."
    ~scalars:[ ("nx", v 64); ("ny", v 256); ("nz", v 24); ("c0", f 0.16); ("c1", f 0.02) ]
    ~check_arrays:[ "anext" ]
    {|
param int nx;
param int ny;
param int nz;
param double c0;
param double c1;
in double a0[nz][ny][nx];
double anext[nz][ny][nx];

#pragma acc kernels name(stencil) small(a0, anext)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        anext[k][j][i] = c1 * (a0[k][j][i-1] + a0[k][j][i+1]
                             + a0[k][j-1][i] + a0[k][j+1][i]
                             + a0[k-1][j][i] + a0[k+1][j][i])
                       - c0 * a0[k][j][i];
      }
    }
  }
}
|}

(* --- 304.olbm: D2Q9 lattice Boltzmann ------------------------------- *)

let olbm =
  Workload.make ~id:"304.olbm" ~title:"lattice Boltzmann (D2Q9)"
    ~suite:Workload.Spec
    ~description:
      "Stream-and-collide over nine distribution functions: each f is \
       read several times while computing density and momentum, so the \
       kernel is intra-iteration-reuse heavy; eighteen arrays give it \
       the suite's highest base register pressure."
    ~scalars:[ ("nx", v 128); ("ny", v 128); ("omega", f 0.8) ]
    ~check_arrays:[ "g0"; "g1"; "g2"; "g3"; "g4"; "g5"; "g6"; "g7"; "g8" ]
    {|
param int nx;
param int ny;
param double omega;
in double f0[ny][nx];
in double f1[ny][nx];
in double f2[ny][nx];
in double f3[ny][nx];
in double f4[ny][nx];
in double f5[ny][nx];
in double f6[ny][nx];
in double f7[ny][nx];
in double f8[ny][nx];
out double g0[ny][nx];
out double g1[ny][nx];
out double g2[ny][nx];
out double g3[ny][nx];
out double g4[ny][nx];
out double g5[ny][nx];
out double g6[ny][nx];
out double g7[ny][nx];
out double g8[ny][nx];

#pragma acc kernels name(collide) \
  small(f0, f1, f2, f3, f4, f5, f6, f7, f8, g0, g1, g2, g3, g4, g5, g6, g7, g8)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      double rho;
      double ux;
      double uy;
      double usq;
      rho = f0[j][i] + f1[j][i] + f2[j][i] + f3[j][i] + f4[j][i]
          + f5[j][i] + f6[j][i] + f7[j][i] + f8[j][i];
      ux = (f1[j][i] - f3[j][i] + f5[j][i] - f6[j][i] - f7[j][i] + f8[j][i]) / rho;
      uy = (f2[j][i] - f4[j][i] + f5[j][i] + f6[j][i] - f7[j][i] - f8[j][i]) / rho;
      usq = 1.5 * (ux * ux + uy * uy);
      g0[j][i] = f0[j][i] - omega * (f0[j][i] - 0.4444 * rho * (1.0 - usq));
      g1[j][i-1] = f1[j][i] - omega * (f1[j][i] - 0.1111 * rho * (1.0 + 3.0 * ux + 4.5 * ux * ux - usq));
      g2[j-1][i] = f2[j][i] - omega * (f2[j][i] - 0.1111 * rho * (1.0 + 3.0 * uy + 4.5 * uy * uy - usq));
      g3[j][i+1] = f3[j][i] - omega * (f3[j][i] - 0.1111 * rho * (1.0 - 3.0 * ux + 4.5 * ux * ux - usq));
      g4[j+1][i] = f4[j][i] - omega * (f4[j][i] - 0.1111 * rho * (1.0 - 3.0 * uy + 4.5 * uy * uy - usq));
      g5[j-1][i-1] = f5[j][i] - omega * (f5[j][i] - 0.0278 * rho * (1.0 + 3.0 * (ux + uy) - usq));
      g6[j-1][i+1] = f6[j][i] - omega * (f6[j][i] - 0.0278 * rho * (1.0 - 3.0 * (ux - uy) - usq));
      g7[j+1][i+1] = f7[j][i] - omega * (f7[j][i] - 0.0278 * rho * (1.0 - 3.0 * (ux + uy) - usq));
      g8[j+1][i-1] = f8[j][i] - omega * (f8[j][i] - 0.0278 * rho * (1.0 + 3.0 * (ux - uy) - usq));
    }
  }
}

// the streaming step of the next iteration reads the propagated
// populations back into cell order (a pure copy pattern, no reuse)
#pragma acc kernels name(stream) small(g0, g1, g2, g5, g7)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      g0[j][i] = g0[j][i] * 0.5 + 0.125 * (g1[j][i-1] + g2[j-1][i] + g5[j-1][i-1] + g7[j+1][i+1]);
    }
  }
}
|}

(* --- 314.omriq: MRI Q-matrix computation ----------------------------- *)

let omriq =
  Workload.make ~id:"314.omriq" ~title:"MRI Q-matrix (MRI-Q)"
    ~suite:Workload.Spec
    ~description:
      "Parboil mri-q: every voxel thread walks the full sample list \
       sequentially; the voxel coordinates are loop-invariant loads, \
       the accumulators Qr/Qi live across the loop, and the per-sample \
       data is broadcast — register promotion is the entire game."
    ~scalars:[ ("nvox", v 4096); ("nsamp", v 48) ]
    ~check_arrays:[ "qr"; "qi" ]
    {|
param int nvox;
param int nsamp;
in double x[nvox];
in double y[nvox];
in double z[nvox];
in double kx[nsamp];
in double ky[nsamp];
in double kz[nsamp];
in double phir[nsamp];
in double phii[nsamp];
double qr[nvox];
double qi[nvox];

#pragma acc kernels name(computeq) small(x, y, z, kx, ky, kz, phir, phii, qr, qi)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= nvox - 1; i++) {
    #pragma acc loop seq
    for (k = 0; k <= nsamp - 1; k++) {
      double arg;
      double wgt;
      arg = 6.2831853 * (kx[k] * x[i] + ky[k] * y[i] + kz[k] * z[i]);
      wgt = 1.0 / (1.0 + 0.001 * arg * arg);
      qr[i] = qr[i] + wgt * (phir[k] * cos(arg) - phii[k] * sin(arg));
      qi[i] = qi[i] + wgt * (phir[k] * sin(arg) + phii[k] * cos(arg));
    }
  }
}
|}

(* --- 352.ep: embarrassingly parallel random pairs -------------------- *)

let ep =
  Workload.make ~id:"352.ep" ~title:"embarrassingly parallel (EP)"
    ~suite:Workload.Spec
    ~description:
      "Gaussian-pair tally: pure per-thread computation over a private \
       pseudo-random stream; almost no memory reuse, so none of the \
       optimizations should move it (a control benchmark)."
    ~scalars:[ ("n", v 16384); ("batch", v 24) ]
    ~check_arrays:[ "sx" ]
    {|
param int n;
param int batch;
in double seeds[n];
double sx[n];

#pragma acc kernels name(gauss) small(seeds, sx)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= n - 1; i++) {
    double t;
    double acc;
    double u;
    t = seeds[i];
    acc = 0.0;
    #pragma acc loop seq
    for (k = 0; k <= batch - 1; k++) {
      t = t * 1389.0 + 0.12345;
      t = t - floor(t);
      u = 2.0 * t - 1.0;
      acc = acc + sqrt(fabs(1.0 - u * u)) * 0.5;
    }
    sx[i] = acc;
  }
}
|}

(* --- 354.cg: conjugate-gradient sparse matvec ------------------------ *)

let cg =
  Workload.make ~id:"354.cg" ~title:"conjugate gradient (CG)"
    ~suite:Workload.Spec
    ~description:
      "Sparse matrix–vector product with an indirect column gather \
       (uncoalesced by nature) plus a q accumulator promoted across \
       the row loop, and a dot-product reduction kernel."
    ~scalars:[ ("nrow", v 4096); ("nnzrow", v 24) ]
    ~check_arrays:[ "q"; "dot" ]
    {|
param int nrow;
param int nnzrow;
in double aval[nrow][nnzrow];
in int acol[nrow][nnzrow];
in double p[nrow];
double q[nrow];
double dot[1];

#pragma acc kernels name(spmv) small(aval, acol, p, q)
{
  #pragma acc loop gang vector(128)
  for (i = 0; i <= nrow - 1; i++) {
    q[i] = 0.0;
    #pragma acc loop seq
    for (k = 0; k <= nnzrow - 1; k++) {
      q[i] = q[i] + aval[i][k] * p[acol[i][k]];
    }
  }
}

#pragma acc kernels name(dotp) small(p, q, dot)
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= nrow - 1; i++) {
    sum += p[i] * q[i];
  }
  dot[0] = sum;
}
|}

(* --- 357.csp: C version of the penta-diagonal solver ----------------- *)

let csp =
  Workload.make ~id:"357.csp" ~title:"penta-diagonal solver, C (CSP)"
    ~suite:Workload.Spec
    ~description:
      "The C rewrite of SP: same flux/rhs kernel structure, but C \
       pointer arrays rule out the dim clause (paper §V.C); only \
       small applies."
    ~scalars:[ ("nx", v 64); ("ny", v 192); ("nz", v 20); ("dt", f 0.015) ]
    ~check_arrays:[ "rhs1"; "rhs2"; "rhs3" ]
    {|
param int nx;
param int ny;
param int nz;
param double dt;
double u1[nz][ny][nx];
double u2[nz][ny][nx];
double u3[nz][ny][nx];
double us[nz][ny][nx];
double vs[nz][ny][nx];
double rho_i[nz][ny][nx];
double rhs1[nz][ny][nx];
double rhs2[nz][ny][nx];
double rhs3[nz][ny][nx];

#pragma acc kernels name(prims) small(u1, u2, u3, us, vs, rho_i)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        double inv;
        inv = 1.0 / u1[k][j][i];
        rho_i[k][j][i] = inv;
        us[k][j][i] = u2[k][j][i] * inv;
        vs[k][j][i] = u3[k][j][i] * inv;
      }
    }
  }
}

#pragma acc kernels name(rhsk) small(u1, u2, us, vs, rhs1, rhs2)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        rhs1[k][j][i] = u1[k][j][i] + dt * (us[k+1][j][i] - 2.0 * us[k][j][i] + us[k-1][j][i]);
        rhs2[k][j][i] = u2[k][j][i] + dt * (vs[k+1][j][i] - 2.0 * vs[k][j][i] + vs[k-1][j][i]);
      }
    }
  }
}

#pragma acc kernels name(xsweep) small(u3, rho_i, rhs3)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        rhs3[k][j][i] = u3[k][j][i]
          + dt * (rhs3[k][j][i-1] * 0.4 + rho_i[k][j][i-1] + rho_i[k][j][i]);
      }
    }
  }
}
|}

(* --- 359.miniGhost: difference stencil + grid summary ---------------- *)

let mghost =
  Workload.make ~id:"359.miniGhost" ~title:"miniGhost halo stencil"
    ~suite:Workload.Spec
    ~description:
      "Mantevo miniGhost: 27-point-flavoured difference sweep with a \
       sequential k walk (span-2 chains on three planes) followed by a \
       grid-summary reduction."
    ~scalars:[ ("nx", v 64); ("ny", v 192); ("nz", v 20) ]
    ~check_arrays:[ "gnew"; "gsum" ]
    {|
param int nx;
param int ny;
param int nz;
in double gold[nz][ny][nx];
double gnew[nz][ny][nx];
double gsum[1];

#pragma acc kernels name(sweep) small(gold, gnew)
{
  #pragma acc loop gang vector(2)
  for (j = 1; j <= ny - 2; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i <= nx - 2; i++) {
      #pragma acc loop seq
      for (k = 1; k <= nz - 2; k++) {
        gnew[k][j][i] = (gold[k-1][j-1][i] + gold[k-1][j][i] + gold[k-1][j+1][i]
                       + gold[k][j-1][i] + gold[k][j][i] + gold[k][j+1][i]
                       + gold[k+1][j-1][i] + gold[k+1][j][i] + gold[k+1][j+1][i]
                       + gold[k][j][i-1] + gold[k][j][i+1]) / 11.0;
      }
    }
  }
}

#pragma acc kernels name(summary) small(gnew, gsum)
{
  double sum = 0.0;
  #pragma acc loop gang vector(128) reduction(+:sum)
  for (i = 0; i <= nx - 1; i++) {
    #pragma acc loop seq
    for (k = 0; k <= nz - 1; k++) {
      sum += gnew[k][0][i];
    }
  }
  gsum[0] = sum;
}
|}

(* --- 370.bt: block-tridiagonal x-sweep -------------------------------- *)

let bt =
  Workload.make ~id:"370.bt" ~title:"block tridiagonal solver (BT)"
    ~suite:Workload.Spec
    ~description:
      "The x-direction solve walks the fastest-varying dimension \
       sequentially while threads cover (j,k): every array reference \
       is uncoalesced — the paper's §V.C explanation of why SAFARA \
       helps BT/LU/SP kernels. Rotating chains remove most of the \
       scattered re-loads."
    ~scalars:[ ("nx", v 24); ("ny", v 64); ("nz", v 128); ("dt", f 0.01) ]
    ~check_arrays:[ "lhs1"; "lhs2" ]
    {|
param int nx;
param int ny;
param int nz;
param double dt;
in double u1[nz][ny][nx];
in double u2[nz][ny][nx];
double lhs1[nz][ny][nx];
double lhs2[nz][ny][nx];

#pragma acc kernels name(xsolve) small(u1, u2, lhs1, lhs2)
{
  #pragma acc loop gang vector(2)
  for (k = 1; k <= nz - 2; k++) {
    #pragma acc loop gang vector(64)
    for (j = 1; j <= ny - 2; j++) {
      #pragma acc loop seq
      for (i = 1; i <= nx - 2; i++) {
        lhs1[k][j][i] = u1[k][j][i-1] * dt + u1[k][j][i] * (1.0 - 2.0 * dt)
                      + u1[k][j][i+1] * dt + u2[k][j][i] * u2[k][j][i-1];
        lhs2[k][j][i] = u2[k][j][i-1] * dt + u2[k][j][i] * (1.0 - 2.0 * dt)
                      + u2[k][j][i+1] * dt;
      }
    }
  }
}
|}

let workloads = [ ostencil; olbm; omriq; ep; cg; csp; mghost; bt ]
