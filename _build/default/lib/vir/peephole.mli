(** Peephole cleanup of the generated virtual code, run before register
    allocation (mirroring the cheap late optimizations a real backend
    performs after address-expansion lowering):

    - constant folding of integer ALU ops with immediate operands;
    - algebraic identities ([x+0], [x*1], [x-0] become copies);
    - block-local copy propagation (forward [mov] sources into uses);
    - dead-code elimination of pure instructions whose results are
      never read anywhere (loads count as pure: the functional
      simulator has no faulting semantics to preserve).

    The pass is semantics-preserving; the pipeline property tests
    compare results with it enabled. *)

val optimize : Instr.t array -> Instr.t array

val stats : Instr.t array -> Instr.t array -> string
(** Human-readable before/after summary. *)
