lib/vir/instr.mli: Format Safara_gpu Vreg
