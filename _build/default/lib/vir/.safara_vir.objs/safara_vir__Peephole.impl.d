lib/vir/peephole.ml: Array Hashtbl Instr List Printf Safara_ir Vreg
