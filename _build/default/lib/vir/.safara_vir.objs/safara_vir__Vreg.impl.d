lib/vir/vreg.ml: Format Int Map Printf Safara_ir Set
