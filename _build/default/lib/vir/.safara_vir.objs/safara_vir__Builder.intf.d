lib/vir/builder.mli: Instr Safara_ir Vreg
