lib/vir/instr.ml: Format Printf Safara_gpu Vreg
