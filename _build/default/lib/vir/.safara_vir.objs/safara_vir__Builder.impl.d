lib/vir/builder.ml: Array Instr List Printf Vreg
