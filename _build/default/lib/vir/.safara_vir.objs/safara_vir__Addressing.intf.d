lib/vir/addressing.mli: Builder Instr Safara_gpu Safara_ir Vreg
