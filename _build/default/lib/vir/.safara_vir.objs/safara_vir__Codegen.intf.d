lib/vir/codegen.mli: Kernel Safara_gpu Safara_ir
