lib/vir/vreg.mli: Format Map Safara_ir Set
