lib/vir/kernel.mli: Format Instr Safara_ir
