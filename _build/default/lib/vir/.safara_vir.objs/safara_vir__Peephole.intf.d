lib/vir/peephole.mli: Instr
