lib/vir/kernel.ml: Array Format Instr List Safara_ir String
