lib/vir/addressing.ml: Builder Either Format Hashtbl Instr List Option Printf Safara_analysis Safara_gpu Safara_ir String Vreg
