lib/vir/codegen.ml: Addressing Builder Format Hashtbl Instr Kernel List Peephole Safara_analysis Safara_gpu Safara_ir String Vreg
