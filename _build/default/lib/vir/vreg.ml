module T = Safara_ir.Types

type t = { rid : int; rty : T.dtype }

type cls = B32 | B64 | Pred

let cls r =
  match r.rty with
  | T.Bool -> Pred
  | ty -> if T.is_64bit ty then B64 else B32

let width r = match cls r with Pred -> 0 | B32 -> 1 | B64 -> 2
let is_pred r = cls r = Pred
let equal a b = a.rid = b.rid
let compare a b = Int.compare a.rid b.rid
let hash a = a.rid

let prefix ty =
  match ty with
  | T.I32 -> "%r"
  | T.I64 -> "%rd"
  | T.F32 -> "%f"
  | T.F64 -> "%fd"
  | T.Bool -> "%p"

let to_string r = Printf.sprintf "%s%d" (prefix r.rty) r.rid
let pp ppf r = Format.pp_print_string ppf (to_string r)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
