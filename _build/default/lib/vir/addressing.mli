(** Array address computation — the code whose register footprint the
    paper's [dim] and [small] clauses shrink (§IV).

    For each dynamic (dope-vector) array the generated kernel loads the
    array's dimension extents from its descriptor into registers and
    computes row-major offsets by Horner's rule. Without clauses, each
    array owns a private descriptor (the compiler cannot know two
    allocatables share dimensions), and offsets are 64-bit. A [dim]
    clause makes all arrays of a group share one descriptor {e and}
    one offset computation per distinct subscript tuple; a [small]
    clause switches the offset arithmetic and descriptor registers to
    32 bits (one hardware register instead of two), with a single
    widening [cvt] at the final address add.

    Static arrays fold their extents into immediates, use 32-bit
    offsets when the array fits in 4 GB (the compiler can prove it),
    and share offsets across arrays with identical dimensions. *)

type mode = {
  md_array : Safara_ir.Array_info.t;
  md_space : Safara_gpu.Memspace.space;
  md_small : bool;  (** 32-bit offset arithmetic *)
  md_dope_set : string;
      (** descriptor identity: the array name, a [dim]-group id, or a
          static dimension signature *)
  md_dims : Safara_ir.Dim.t list;  (** effective dimensions *)
  md_descriptor : bool;
      (** Fortran-allocatable semantics: every bound (lower bounds and
          extents, even ones written as literals) lives in a runtime
          dope vector and must be loaded into registers — the paper's
          t0..t14 temporaries. Arrays declared with explicit lower
          bounds get this treatment; a [dim] clause with {e stated}
          dimensions turns the stated values back into compile-time
          knowledge (the paper's §IV.A recommendation). *)
}

type t

val create : Builder.t -> modes:(string * mode) list -> t

val modes_of_region :
  arch:Safara_gpu.Arch.t ->
  Safara_ir.Program.t ->
  Safara_ir.Region.t ->
  (string * mode) list
(** Compute each referenced array's addressing mode from the region's
    [dim]/[small] clauses, the declarations, and the memory-space
    analysis. *)

val base_reg : t -> string -> Vreg.t
(** Base-pointer register of an array (loaded once per kernel). *)

val preload : t -> string list -> unit
(** Load base pointers and descriptor extents of the given arrays at
    the current emission point (kernel entry). *)

val address_of :
  t ->
  compile_sub:(Safara_ir.Expr.t -> Instr.operand) ->
  string ->
  Safara_ir.Expr.t list ->
  Vreg.t
(** Emit (or reuse) the address computation for [array\[subs…\]];
    returns a 64-bit address register. [compile_sub] compiles one
    subscript to a 32-bit operand. *)

val dope_params : mode -> string list
(** Descriptor parameter names contributed by this array's dope set
    (empty for non-leader group members and static arrays). *)

val mark : t -> int
val release : t -> int -> unit
(** Scope management for the offset/address caches: [release t (mark t)]
    drops every cache entry added since the mark (used at loop-body and
    branch boundaries where cached values go stale). *)

val invalidate_var : t -> string -> unit
(** Drop cached offsets/addresses whose subscripts read the given
    scalar variable (called when that scalar is reassigned). *)

val stats : t -> int * int
(** (offset computations emitted, offset computations reused) *)
