module I = Instr
module V = Vreg
module T = Safara_ir.Types

(* --- constant folding & identities --------------------------------- *)

let fold_instr (instr : I.t) : I.t =
  match instr with
  | I.Bin { op; dst; a = I.Imm x; b = I.Imm y } when T.is_integer dst.V.rty ->
      let v =
        match op with
        | I.Add -> Some (x + y)
        | I.Sub -> Some (x - y)
        | I.Mul -> Some (x * y)
        | I.Div -> if y = 0 then None else Some (x / y)
        | I.Rem -> if y = 0 then None else Some (x mod y)
        | I.Min -> Some (min x y)
        | I.Max -> Some (max x y)
        | I.Pow | I.And | I.Or -> None
      in
      (match v with
      | Some v -> I.Mov { dst; src = I.Imm v }
      | None -> instr)
  | I.Bin { op = I.Add; dst; a; b = I.Imm 0 }
  | I.Bin { op = I.Sub; dst; a; b = I.Imm 0 }
  | I.Bin { op = I.Add; dst; a = I.Imm 0; b = a }
  | I.Bin { op = I.Mul; dst; a; b = I.Imm 1 }
  | I.Bin { op = I.Mul; dst; a = I.Imm 1; b = a }
  | I.Bin { op = I.Div; dst; a; b = I.Imm 1 } ->
      I.Mov { dst; src = a }
  | _ -> instr

(* --- block-local copy propagation ----------------------------------- *)

let copy_propagate code =
  let copies : (int, I.operand) Hashtbl.t = Hashtbl.create 32 in
  let invalidate (r : V.t) =
    Hashtbl.remove copies r.V.rid;
    (* any copy whose source is r is stale now *)
    let stale =
      Hashtbl.fold
        (fun k v acc -> match v with I.Reg s when V.equal s r -> k :: acc | _ -> acc)
        copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  Array.map
    (fun instr ->
      match instr with
      | I.Label _ | I.Bra _ | I.Brc _ | I.Ret ->
          (* control flow: be conservative, clear the window *)
          let instr' =
            match instr with
            | I.Brc r -> (
                match Hashtbl.find_opt copies r.pred.V.rid with
                | Some (I.Reg p) -> I.Brc { r with pred = p }
                | _ -> instr)
            | _ -> instr
          in
          Hashtbl.reset copies;
          instr'
      | _ ->
          let subst (r : V.t) =
            match Hashtbl.find_opt copies r.V.rid with
            | Some (I.Reg s) when s.V.rty = r.V.rty -> s
            | _ -> r
          in
          let subst_op (op : I.operand) =
            match op with
            | I.Reg r -> (
                match Hashtbl.find_opt copies r.V.rid with
                | Some replacement -> (
                    match replacement with
                    | I.Reg s when s.V.rty = r.V.rty -> replacement
                    | I.Imm _ | I.FImm _ -> replacement
                    | I.Reg _ -> op)
                | None -> op)
            | _ -> op
          in
          (* rewrite uses; Ld/St/Atom addresses are plain registers *)
          let instr' =
            match instr with
            | I.Ld r -> I.Ld { r with addr = subst r.addr }
            | I.St r -> I.St { r with src = subst_op r.src; addr = subst r.addr }
            | I.Mov r -> I.Mov { r with src = subst_op r.src }
            | I.Bin r -> I.Bin { r with a = subst_op r.a; b = subst_op r.b }
            | I.Una r -> I.Una { r with a = subst_op r.a }
            | I.Cvt r -> I.Cvt { r with src = subst r.src }
            | I.Setp r -> I.Setp { r with a = subst_op r.a; b = subst_op r.b }
            | I.Atom r -> I.Atom { r with addr = subst r.addr; src = subst_op r.src }
            | other -> other
          in
          (* update the copy window *)
          List.iter invalidate (I.defs instr');
          (match instr' with
          | I.Mov { dst; src = I.Reg s } when not (V.equal dst s) ->
              Hashtbl.replace copies dst.V.rid (I.Reg s)
          | I.Mov { dst; src = (I.Imm _ | I.FImm _) as c } ->
              Hashtbl.replace copies dst.V.rid c
          | _ -> ());
          instr')
    code

(* --- dead-code elimination ------------------------------------------ *)

let is_pure = function
  | I.Mov _ | I.Bin _ | I.Una _ | I.Cvt _ | I.Setp _ | I.Spec _ | I.Ldp _
  | I.Ld _ ->
      true
  | I.Label _ | I.St _ | I.Bra _ | I.Brc _ | I.Atom _ | I.Ret -> false

let dead_code_eliminate code =
  let code = ref (Array.to_list code) in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = Hashtbl.create 64 in
    List.iter
      (fun i -> List.iter (fun (r : V.t) -> Hashtbl.replace used r.V.rid ()) (I.uses i))
      !code;
    let kept =
      List.filter
        (fun i ->
          if not (is_pure i) then true
          else
            match I.defs i with
            | [ d ] -> Hashtbl.mem used d.V.rid
            | _ -> true)
        !code
    in
    if List.length kept <> List.length !code then begin
      changed := true;
      code := kept
    end
  done;
  Array.of_list !code

let optimize code =
  code |> Array.map fold_instr |> copy_propagate |> Array.map fold_instr
  |> dead_code_eliminate

let stats before after =
  Printf.sprintf "peephole: %d -> %d instructions" (Array.length before)
    (Array.length after)
