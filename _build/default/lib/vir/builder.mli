(** Instruction-stream builder: fresh virtual registers, fresh labels,
    append-only emission. *)

type t

val create : unit -> t
val fresh : t -> Safara_ir.Types.dtype -> Vreg.t
val emit : t -> Instr.t -> unit
val fresh_label : t -> string -> string
(** [fresh_label b stem] returns a unique label like ["$L_stem_7"]. *)

val code : t -> Instr.t array
val length : t -> int
