(** Virtual registers of the PTX-like virtual ISA.

    Like PTX, the virtual ISA has an unlimited supply of typed
    pseudo-registers; the closed-source assembler (our {!Safara_ptxas})
    maps them onto the hardware's 32-bit register file. A 64-bit value
    ([I64]/[F64]) occupies an aligned pair of hardware registers —
    the fact the paper's [small] clause exploits (§IV.B). Predicate
    registers live in a separate file and do not count against the
    general-purpose budget. *)

type t = { rid : int; rty : Safara_ir.Types.dtype }

type cls = B32 | B64 | Pred

val cls : t -> cls
val width : t -> int
(** Hardware 32-bit registers occupied: 1 or 2 (0 for predicates). *)

val is_pred : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
