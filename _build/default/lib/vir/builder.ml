type t = {
  mutable rev_code : Instr.t list;
  mutable nreg : int;
  mutable nlabel : int;
  mutable len : int;
}

let create () = { rev_code = []; nreg = 0; nlabel = 0; len = 0 }

let fresh t rty =
  let r = { Vreg.rid = t.nreg; rty } in
  t.nreg <- t.nreg + 1;
  r

let emit t i =
  t.rev_code <- i :: t.rev_code;
  t.len <- t.len + 1

let fresh_label t stem =
  let l = Printf.sprintf "$L_%s_%d" stem t.nlabel in
  t.nlabel <- t.nlabel + 1;
  l

let code t = Array.of_list (List.rev t.rev_code)
let length t = t.len
