type axis = X | Y | Z

type special = Tid of axis | Ctaid of axis | Ntid of axis | Nctaid of axis

type binop = Add | Sub | Mul | Div | Rem | Min | Max | Pow | And | Or

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not | Sqrt | Exp | Log | Sin | Cos | Fabs | Floor

type operand = Reg of Vreg.t | Imm of int | FImm of float

type mem = {
  m_space : Safara_gpu.Memspace.space;
  m_access : Safara_gpu.Memspace.access;
  m_bytes : int;
}

type t =
  | Label of string
  | Ld of { dst : Vreg.t; addr : Vreg.t; mem : mem; note : string }
  | St of { src : operand; addr : Vreg.t; mem : mem; note : string }
  | Ldp of { dst : Vreg.t; param : string }
  | Mov of { dst : Vreg.t; src : operand }
  | Bin of { op : binop; dst : Vreg.t; a : operand; b : operand }
  | Una of { op : unop; dst : Vreg.t; a : operand }
  | Cvt of { dst : Vreg.t; src : Vreg.t }
  | Setp of { cmp : cmp; dst : Vreg.t; a : operand; b : operand }
  | Bra of string
  | Brc of { pred : Vreg.t; if_true : bool; target : string }
  | Spec of { dst : Vreg.t; sp : special }
  | Atom of { op : binop; addr : Vreg.t; src : operand; mem : mem; note : string }
  | Ret

let op_regs = function Reg r -> [ r ] | Imm _ | FImm _ -> []

let defs = function
  | Ld { dst; _ } | Ldp { dst; _ } | Mov { dst; _ } | Bin { dst; _ }
  | Una { dst; _ } | Cvt { dst; _ } | Setp { dst; _ } | Spec { dst; _ } ->
      [ dst ]
  | Label _ | St _ | Bra _ | Brc _ | Atom _ | Ret -> []

let uses = function
  | Ld { addr; _ } -> [ addr ]
  | St { src; addr; _ } -> op_regs src @ [ addr ]
  | Mov { src; _ } -> op_regs src
  | Bin { a; b; _ } | Setp { a; b; _ } -> op_regs a @ op_regs b
  | Una { a; _ } -> op_regs a
  | Cvt { src; _ } -> [ src ]
  | Brc { pred; _ } -> [ pred ]
  | Atom { addr; src; _ } -> [ addr ] @ op_regs src
  | Label _ | Ldp _ | Bra _ | Spec _ | Ret -> []

let is_branch = function Bra _ | Brc _ | Ret -> true | _ -> false

let branch_targets = function
  | Bra t -> [ t ]
  | Brc { target; _ } -> [ target ]
  | _ -> []

let map_op f = function Reg r -> Reg (f r) | (Imm _ | FImm _) as o -> o

let map_regs f = function
  | Label _ as i -> i
  | Ld r -> Ld { r with dst = f r.dst; addr = f r.addr }
  | St r -> St { r with src = map_op f r.src; addr = f r.addr }
  | Ldp r -> Ldp { r with dst = f r.dst }
  | Mov r -> Mov { dst = f r.dst; src = map_op f r.src }
  | Bin r -> Bin { r with dst = f r.dst; a = map_op f r.a; b = map_op f r.b }
  | Una r -> Una { r with dst = f r.dst; a = map_op f r.a }
  | Cvt r -> Cvt { dst = f r.dst; src = f r.src }
  | Setp r -> Setp { r with dst = f r.dst; a = map_op f r.a; b = map_op f r.b }
  | Bra _ as i -> i
  | Brc r -> Brc { r with pred = f r.pred }
  | Spec r -> Spec { r with dst = f r.dst }
  | Atom r -> Atom { r with addr = f r.addr; src = map_op f r.src }
  | Ret -> Ret

let axis_to_string = function X -> "x" | Y -> "y" | Z -> "z"

let special_to_string = function
  | Tid a -> "%tid." ^ axis_to_string a
  | Ctaid a -> "%ctaid." ^ axis_to_string a
  | Ntid a -> "%ntid." ^ axis_to_string a
  | Nctaid a -> "%nctaid." ^ axis_to_string a

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | Pow -> "pow"
  | And -> "and"
  | Or -> "or"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Sqrt -> "sqrt"
  | Exp -> "ex2"
  | Log -> "lg2"
  | Sin -> "sin"
  | Cos -> "cos"
  | Fabs -> "abs"
  | Floor -> "cvt.rmi"

let op_to_string = function
  | Reg r -> Vreg.to_string r
  | Imm n -> string_of_int n
  | FImm f -> Printf.sprintf "%g" f

let space_suffix (m : mem) =
  let s = Safara_gpu.Memspace.space_to_string m.m_space in
  let s = if s = "read-only" then "global.nc" else s in
  Printf.sprintf "%s.b%d" s (m.m_bytes * 8)

let to_string = function
  | Label l -> l ^ ":"
  | Ld { dst; addr; mem; note } ->
      Printf.sprintf "  ld.%s %s, [%s]  // %s %s" (space_suffix mem)
        (Vreg.to_string dst) (Vreg.to_string addr) note
        (Safara_gpu.Memspace.access_to_string mem.m_access)
  | St { src; addr; mem; note } ->
      Printf.sprintf "  st.%s [%s], %s  // %s %s" (space_suffix mem)
        (Vreg.to_string addr) (op_to_string src) note
        (Safara_gpu.Memspace.access_to_string mem.m_access)
  | Ldp { dst; param } ->
      Printf.sprintf "  ld.param %s, [%s]" (Vreg.to_string dst) param
  | Mov { dst; src } ->
      Printf.sprintf "  mov %s, %s" (Vreg.to_string dst) (op_to_string src)
  | Bin { op; dst; a; b } ->
      Printf.sprintf "  %s %s, %s, %s" (binop_to_string op) (Vreg.to_string dst)
        (op_to_string a) (op_to_string b)
  | Una { op; dst; a } ->
      Printf.sprintf "  %s %s, %s" (unop_to_string op) (Vreg.to_string dst)
        (op_to_string a)
  | Cvt { dst; src } ->
      Printf.sprintf "  cvt %s, %s" (Vreg.to_string dst) (Vreg.to_string src)
  | Setp { cmp; dst; a; b } ->
      Printf.sprintf "  setp.%s %s, %s, %s" (cmp_to_string cmp)
        (Vreg.to_string dst) (op_to_string a) (op_to_string b)
  | Bra t -> Printf.sprintf "  bra %s" t
  | Brc { pred; if_true; target } ->
      Printf.sprintf "  @%s%s bra %s"
        (if if_true then "" else "!")
        (Vreg.to_string pred) target
  | Spec { dst; sp } ->
      Printf.sprintf "  mov %s, %s" (Vreg.to_string dst) (special_to_string sp)
  | Atom { op; addr; src; mem; note } ->
      Printf.sprintf "  atom.%s.%s [%s], %s  // %s" (space_suffix mem)
        (binop_to_string op) (Vreg.to_string addr) (op_to_string src) note
  | Ret -> "  ret"

let pp ppf i = Format.pp_print_string ppf (to_string i)
