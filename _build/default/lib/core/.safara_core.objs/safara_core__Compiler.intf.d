lib/core/compiler.mli: Safara_gpu Safara_ir Safara_ptxas Safara_sim Safara_transform Safara_vir
