lib/core/compiler.ml: List Safara_analysis Safara_gpu Safara_ir Safara_lang Safara_ptxas Safara_sim Safara_transform Safara_vir String
