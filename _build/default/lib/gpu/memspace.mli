(** Memory spaces of the GPU memory hierarchy and warp-level access
    pattern classes.

    These two classifications drive SAFARA's cost model (paper
    §III.B.1/3): the cost of an array reference is
    [reference_count × latency(space, access)]. *)

type space =
  | Global  (** read/write device memory, cached in L2 only on Kepler *)
  | Read_only
      (** read-only global data routed through the 48 KB per-SMX
          read-only data cache (Kepler LDG path) *)
  | Shared  (** per-thread-block on-chip scratchpad *)
  | Constant  (** broadcast-optimized constant memory *)
  | Local
      (** per-thread spill/stack space; resides in device memory but is
          cached in L1 on Kepler *)
  | Param  (** kernel parameter space (driver-managed constant bank) *)

type access =
  | Coalesced
      (** consecutive lanes touch consecutive addresses: the warp's 32
          requests merge into one or two segment transactions *)
  | Uncoalesced of int
      (** scattered: the argument is the number of memory transactions
          the warp generates (2..32) *)
  | Invariant
      (** every lane reads the same address (broadcast-friendly) *)

val transactions : warp_size:int -> elem_bytes:int -> segment_bytes:int -> access -> int
(** Number of segment transactions one warp-wide access generates. *)

val space_to_string : space -> string
val access_to_string : access -> string
val pp_space : Format.formatter -> space -> unit
val pp_access : Format.formatter -> access -> unit
val equal_space : space -> space -> bool
val equal_access : access -> access -> bool
