lib/gpu/memspace.mli: Format
