lib/gpu/arch.ml: Format
