lib/gpu/latency.mli: Format Memspace
