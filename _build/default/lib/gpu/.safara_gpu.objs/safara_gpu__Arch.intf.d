lib/gpu/arch.mli: Format
