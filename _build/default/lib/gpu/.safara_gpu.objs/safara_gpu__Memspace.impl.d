lib/gpu/memspace.ml: Format Printf
