lib/gpu/latency.ml: Format Memspace
