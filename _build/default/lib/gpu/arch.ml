type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  max_threads_per_sm : int;
  max_threads_per_block : int;
  max_blocks_per_sm : int;
  max_warps_per_sm : int;
  registers_per_sm : int;
  max_registers_per_thread : int;
  register_alloc_unit : int;
  shared_mem_per_sm : int;
  shared_alloc_unit : int;
  has_read_only_cache : bool;
  read_only_cache_bytes : int;
  l2_bytes : int;
  clock_mhz : int;
  issue_width : int;
  mem_segment_bytes : int;
  mem_cycles_per_transaction : float;
}

let kepler_k20xm =
  {
    name = "Tesla K20Xm (Kepler GK110)";
    num_sms = 14;
    warp_size = 32;
    max_threads_per_sm = 2048;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 16;
    max_warps_per_sm = 64;
    registers_per_sm = 65536;
    max_registers_per_thread = 255;
    register_alloc_unit = 256;
    shared_mem_per_sm = 49152;
    shared_alloc_unit = 256;
    has_read_only_cache = true;
    read_only_cache_bytes = 49152;
    l2_bytes = 1572864;
    clock_mhz = 732;
    issue_width = 4;
    mem_segment_bytes = 128;
    mem_cycles_per_transaction = 2.0;
  }

let fermi_like =
  {
    name = "Fermi-class (GF110)";
    num_sms = 16;
    warp_size = 32;
    max_threads_per_sm = 1536;
    max_threads_per_block = 1024;
    max_blocks_per_sm = 8;
    max_warps_per_sm = 48;
    registers_per_sm = 32768;
    max_registers_per_thread = 63;
    register_alloc_unit = 64;
    shared_mem_per_sm = 49152;
    shared_alloc_unit = 128;
    has_read_only_cache = false;
    read_only_cache_bytes = 0;
    l2_bytes = 786432;
    clock_mhz = 1150;
    issue_width = 2;
    mem_segment_bytes = 128;
    mem_cycles_per_transaction = 4.0;
  }

let round_up_to ~unit n = if unit <= 0 then n else (n + unit - 1) / unit * unit

let registers_per_warp t ~regs_per_thread =
  round_up_to ~unit:t.register_alloc_unit (regs_per_thread * t.warp_size)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s:@ %d SMs, %d regs/SM, %d max regs/thread,@ %d threads/SM, %d \
     blocks/SM, %d KB shared/SM, read-only cache: %b@]"
    t.name t.num_sms t.registers_per_sm t.max_registers_per_thread
    t.max_threads_per_sm t.max_blocks_per_sm
    (t.shared_mem_per_sm / 1024)
    t.has_read_only_cache
