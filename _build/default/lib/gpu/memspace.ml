type space = Global | Read_only | Shared | Constant | Local | Param

type access = Coalesced | Uncoalesced of int | Invariant

let transactions ~warp_size ~elem_bytes ~segment_bytes = function
  | Coalesced ->
      (* a full warp touching consecutive elements spans this many
         segments *)
      max 1 (warp_size * elem_bytes / segment_bytes)
  | Uncoalesced n -> max 1 (min warp_size n)
  | Invariant -> 1

let space_to_string = function
  | Global -> "global"
  | Read_only -> "read-only"
  | Shared -> "shared"
  | Constant -> "constant"
  | Local -> "local"
  | Param -> "param"

let access_to_string = function
  | Coalesced -> "coalesced"
  | Uncoalesced n -> Printf.sprintf "uncoalesced(%d)" n
  | Invariant -> "invariant"

let pp_space ppf s = Format.pp_print_string ppf (space_to_string s)
let pp_access ppf a = Format.pp_print_string ppf (access_to_string a)

let equal_space (a : space) (b : space) = a = b
let equal_access (a : access) (b : access) = a = b
