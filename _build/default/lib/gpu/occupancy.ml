type request = {
  threads_per_block : int;
  regs_per_thread : int;
  shared_bytes_per_block : int;
}

type limiter = Registers | Warps | Blocks | Shared_memory | Block_too_large

type result = {
  blocks_per_sm : int;
  active_warps : int;
  occupancy : float;
  limiter : limiter;
}

let round_up_to ~unit n = if unit <= 0 then n else (n + unit - 1) / unit * unit

let infeasible = { blocks_per_sm = 0; active_warps = 0; occupancy = 0.; limiter = Block_too_large }

let calculate (arch : Arch.t) req =
  if
    req.threads_per_block <= 0
    || req.threads_per_block > arch.max_threads_per_block
    || req.regs_per_thread > arch.max_registers_per_thread
    || req.shared_bytes_per_block > arch.shared_mem_per_sm
  then infeasible
  else
    let warps_per_block =
      (req.threads_per_block + arch.warp_size - 1) / arch.warp_size
    in
    let by_blocks = arch.max_blocks_per_sm in
    let by_warps = arch.max_warps_per_sm / warps_per_block in
    let by_regs =
      if req.regs_per_thread <= 0 then max_int
      else
        let regs_per_warp =
          Arch.registers_per_warp arch ~regs_per_thread:req.regs_per_thread
        in
        arch.registers_per_sm / (regs_per_warp * warps_per_block)
    in
    let by_shared =
      if req.shared_bytes_per_block <= 0 then max_int
      else
        let shared =
          round_up_to ~unit:arch.shared_alloc_unit req.shared_bytes_per_block
        in
        arch.shared_mem_per_sm / shared
    in
    let blocks =
      List.fold_left min max_int [ by_blocks; by_warps; by_regs; by_shared ]
    in
    if blocks <= 0 then { infeasible with limiter = Registers }
    else
      let limiter =
        (* report the (first) binding constraint *)
        if blocks = by_regs && by_regs <= by_warps && by_regs <= by_blocks then
          Registers
        else if blocks = by_shared && by_shared <= by_warps then Shared_memory
        else if blocks = by_warps then Warps
        else Blocks
      in
      let active_warps = blocks * warps_per_block in
      {
        blocks_per_sm = blocks;
        active_warps;
        occupancy = float_of_int active_warps /. float_of_int arch.max_warps_per_sm;
        limiter;
      }

let max_regs_for_full_occupancy (arch : Arch.t) ~threads_per_block =
  let rec search best r =
    if r > arch.max_registers_per_thread then best
    else
      let res =
        calculate arch
          { threads_per_block; regs_per_thread = r; shared_bytes_per_block = 0 }
      in
      let full =
        calculate arch
          { threads_per_block; regs_per_thread = 0; shared_bytes_per_block = 0 }
      in
      if res.active_warps >= full.active_warps then search r (r + 1)
      else best
  in
  search 0 1

let limiter_to_string = function
  | Registers -> "registers"
  | Warps -> "warps"
  | Blocks -> "blocks"
  | Shared_memory -> "shared memory"
  | Block_too_large -> "block too large"

let pp_limiter ppf l = Format.pp_print_string ppf (limiter_to_string l)

let pp_result ppf r =
  Format.fprintf ppf "%d blocks/SM, %d warps, %.1f%% occupancy (limited by %s)"
    r.blocks_per_sm r.active_warps (100. *. r.occupancy)
    (limiter_to_string r.limiter)
