(** CUDA occupancy calculator.

    Computes how many thread blocks (and therefore warps) can be
    resident on one SM simultaneously, given a kernel's resource
    demands. This is the mechanism by which register pressure hurts
    performance on GPUs (paper §IV): each extra register per thread
    can lower the number of resident warps and thus the SM's ability
    to hide memory latency. Follows the NVIDIA occupancy-calculator
    formulas, including warp-granular register allocation. *)

type request = {
  threads_per_block : int;
  regs_per_thread : int;
  shared_bytes_per_block : int;
}

type limiter = Registers | Warps | Blocks | Shared_memory | Block_too_large

type result = {
  blocks_per_sm : int;
  active_warps : int;
  occupancy : float;  (** active warps / max warps, in [0, 1] *)
  limiter : limiter;  (** binding resource constraint *)
}

val calculate : Arch.t -> request -> result
(** [calculate arch req] returns the occupancy of a kernel launch.
    If the block itself is infeasible (too many threads, more
    registers than the per-thread cap, or more shared memory than the
    SM owns), the result has [blocks_per_sm = 0] and limiter
    [Block_too_large]. *)

val max_regs_for_full_occupancy : Arch.t -> threads_per_block:int -> int
(** Largest register-per-thread budget that still allows the maximum
    number of resident warps — the register target SAFARA's feedback
    loop can aim for instead of the hardware cap. *)

val pp_result : Format.formatter -> result -> unit
val pp_limiter : Format.formatter -> limiter -> unit
